"""The query service: session pool, routes, and the asyncio HTTP server.

``repro.serve`` turns one set of registered tables into an always-on,
multi-tenant endpoint (``repro serve`` on the command line).  The shape:

* a :class:`SessionPool` - N :class:`~repro.session.Session` objects
  sharing ONE catalog (sources *and* build caches), so every session
  serves the same tables and a table scanned by one is warm for all;
* an :class:`~repro.serve.admission.AdmissionController` metering
  *executions* per tenant (admit / queue / shed);
* a :class:`~repro.serve.cache.ResultCache` shared across tenants:
  completed Results by canonical spec + seed, with single-flight collapse
  of concurrent identical queries and catalog-invalidation hooks;
* a deliberately small HTTP/1.1 layer on ``asyncio.start_server`` -
  stdlib only, JSON bodies, SSE for streams.

Routes::

    GET    /healthz        liveness + table count
    GET    /readyz         readiness; 503 once the server is draining
    GET    /tables         registered sources (schema, kind, cache state)
    GET    /stats          per-tenant counters + cache stats
    POST   /query          execute; JSON Result envelope
    POST   /stream         execute; SSE PartialUpdates, then `done`
    GET    /subscribe      continuous windowed query; SSE window events
    POST   /subscribe      same, with the window described in the JSON body
    DELETE /query/{id}     cancel a queued/running query OR a subscription

SSE responses are resumable: every live stream runs through a bounded
replay relay, so a client that loses the connection re-sends the same
request with a ``Last-Event-ID`` header and (while the relay still holds
the next frame) receives the missed frames byte-identically and then the
live tail.  A reconnect past the buffer gets a structured 409
(``replay_gap``) telling it to restart the query.

On SIGTERM the server *drains*: ``/readyz`` flips to 503, new work is
shed with ``Retry-After``, in-flight queries run to completion (or are
cooperatively cancelled at ``--drain-timeout``), and the process exits 0.

Every execution route reads the tenant from the ``X-Repro-Tenant`` header
(or a ``tenant`` body field) and applies that tenant's quotas and default
query knobs.  Cache hits and single-flight followers bypass admission
entirely: quotas meter *work*, not answers.

Subscriptions (``/subscribe``) are long-lived: one request holds an SSE
stream open for the lifetime of a :class:`~repro.streaming.ContinuousQuery`.
They are admitted against the tenant's ``max_subscriptions`` slots rather
than the execution queue (parking a many-window stream in an execution
slot would starve the tenant's one-shot queries), never cached (each
window is fresh work), and cancellable mid-stream via ``DELETE
/query/{id}`` with the subscription's query id.
"""

from __future__ import annotations

import asyncio
import collections
import dataclasses
import functools
import itertools
import json
import queue as queue_mod
import threading
import urllib.parse
from dataclasses import dataclass
from typing import AsyncIterator

from repro.errors import QueryCancelled
from repro.resilience.deadline import Deadline
from repro.serve.admission import Admission, AdmissionController, QueryShed
from repro.serve.cache import ResultCache
from repro.serve.sse import SSE_HEADERS, sse_event
from repro.serve.tenants import DEFAULT_TENANT, TenantConfig, TenantRegistry
from repro.serve.wire import (
    WireError,
    apply_tenant_defaults,
    build_query_request,
    canonical_json,
    error_payload,
    parse_json_body,
)
from repro.session.planner import _replay_updates, stream_spec
from repro.session.result import PartialUpdate, Result
from repro.session.session import QueryFuture, Session, connect
from repro.streaming import WindowSpec
from repro.streaming.continuous import ContinuousQuery
from repro.streaming.runner import WindowResult

__all__ = [
    "SessionPool",
    "QueryService",
    "ReproServer",
    "ServerHandle",
    "serve_in_thread",
    "run_server",
]

#: Sentinel marking normal end of a subscription's event iterator.
_SUB_DONE = object()

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    411: "Length Required",
    429: "Too Many Requests",
    499: "Client Closed Request",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class _RelayClosed(Exception):
    """The replay relay was torn down (janitor expiry or service close)."""


class _Relay:
    """A bounded, replayable frame buffer between one SSE pump and at most
    one attached consumer.

    The pump (an asyncio task) appends finished SSE frames; the consumer
    (the HTTP response generator) walks them by id.  Frames stay in the
    deque after delivery, so a client that reconnects with
    ``Last-Event-ID: n`` replays from ``n + 1`` byte-identically - the
    relay is the reconnect window.  Backpressure: ``append`` blocks once
    ``depth`` frames are undelivered (terminal frames always land, so a
    finished query can always say so).  Delivered frames are evicted only
    when the deque outgrows ``depth``; ``gap`` reports whether a resume
    point has been evicted.
    """

    def __init__(self, depth: int) -> None:
        self._depth = depth
        self._frames: "collections.deque[tuple[int, bytes, bool]]" = collections.deque()
        self._last_id = 0
        self._first_id = 1
        self._delivered = 0
        self._finished = False
        self._closed = False
        self._cond = threading.Condition()
        #: True while an HTTP response generator is walking this relay.
        self.attached = False

    def append(self, frame: bytes, *, terminal: bool = False) -> int:
        with self._cond:
            while (
                not self._closed
                and not terminal
                and self._last_id - self._delivered >= self._depth
            ):
                self._cond.wait(0.5)
            if self._closed:
                raise _RelayClosed()
            self._last_id += 1
            self._frames.append((self._last_id, frame, terminal))
            while (
                len(self._frames) > self._depth
                and self._frames[0][0] <= self._delivered
            ):
                self._frames.popleft()
                self._first_id += 1
            if terminal:
                self._finished = True
            self._cond.notify_all()
            return self._last_id

    def next_after(self, pos: int):
        """Block for the first frame with id > pos; None on close/exhaustion."""
        with self._cond:
            if pos > self._delivered:
                self._delivered = pos
                self._cond.notify_all()
            while True:
                if self._closed:
                    return None
                for fid, frame, terminal in self._frames:
                    if fid > pos:
                        return (fid, frame, terminal)
                if self._finished:
                    return None
                self._cond.wait(0.5)

    def gap(self, last_id: int) -> bool:
        """True when resuming after ``last_id`` would skip evicted frames."""
        with self._cond:
            return last_id + 1 < self._first_id or last_id > self._last_id

    def close(self) -> None:
        with self._cond:
            self._closed = True
            self._cond.notify_all()


class SessionPool:
    """N sessions, one catalog: shared sources and build caches.

    The primary session is the one whose knobs (delta, algorithm, engine,
    shards, ...) and catalog define the service; the extras are clones
    sharing its catalog, so any of them can run any registered query and
    the first materialization of a table warms all of them.  Queries are
    handed out round-robin, giving each its own submit pool.
    """

    def __init__(self, primary: Session, size: int = 2) -> None:
        if size < 1:
            raise ValueError(f"pool size must be >= 1, got {size}")
        self.primary = primary
        self._sessions = [primary] + [
            connect(
                delta=primary.delta,
                resolution=primary.resolution,
                algorithm=primary.algorithm,
                engine=primary.engine,
                seed=primary.seed,
                shards=primary.shards,
                max_workers=primary.max_workers,
                executor=primary.executor,
                submit_workers=primary.submit_workers,
                deadline_ms=primary.deadline_ms,
                max_retries=primary.max_retries,
                catalog=primary.catalog,
            )
            for _ in range(size - 1)
        ]
        self._next = 0

    def __len__(self) -> int:
        return len(self._sessions)

    def next(self) -> Session:
        session = self._sessions[self._next % len(self._sessions)]
        self._next += 1
        return session

    def close(self) -> None:
        """Close every session (including the primary); in-flight work drains."""
        for session in self._sessions:
            session.close()


@dataclass
class _Ticket:
    """One in-flight query's cancellation handles (DELETE /query/{id})."""

    query_id: str
    tenant: str
    admission: Admission | None = None
    qfuture: QueryFuture | None = None
    deadline: Deadline | None = None
    subscription: ContinuousQuery | None = None
    relay: _Relay | None = None
    pump: "asyncio.Task | None" = None
    #: Durable-subscription checkpoint name (None for everything else).
    checkpoint_id: str | None = None
    #: Set by an explicit DELETE so the checkpoint dies with the query;
    #: janitor/shutdown cancels retain it for a later resume.
    drop_checkpoint: bool = False

    def cancel(self) -> bool:
        """Cancel wherever the query currently is: queue, pool, or mid-run."""
        hit = False
        if self.admission is not None and self.admission.cancel():
            hit = True
        if self.qfuture is not None and self.qfuture.cancel():
            hit = True
        elif self.deadline is not None:
            self.deadline.cancel()
            hit = True
        if self.subscription is not None:
            self.subscription.cancel()
            hit = True
        return hit


@dataclass
class _Response:
    """One HTTP response: JSON bytes or an async byte-chunk stream (SSE)."""

    status: int
    body: "bytes | AsyncIterator[bytes]"
    headers: tuple = ()
    content_type: str = "application/json"


def _json_response(status: int, obj, headers: tuple = ()) -> _Response:
    return _Response(status, canonical_json(obj), headers=headers)


#: GET /subscribe query parameters -> JSON body keys (+ parser).  The GET
#: form exists so ``EventSource``-style clients (no request body) can open
#: subscriptions; it is sugar for the POST body and shares its validation.
_SUBSCRIBE_PARAMS = {
    "sql": ("sql", str),
    "tenant": ("tenant", str),
    "query_id": ("query_id", str),
    "seed": ("seed", int),
    "max_windows": ("max_windows", int),
    "window_size": ("size", float),
    "window_every": ("every", float),
    "window_on": ("on", str),
    "window_late": ("late", str),
    "window_lateness": ("allowed_lateness", float),
    "window_origin": ("origin", float),
}

_WINDOW_KEYS = {"size", "every", "on", "late", "allowed_lateness", "origin"}


def _subscribe_params(target: str) -> dict:
    """Lower ``GET /subscribe?...`` query parameters to a request body."""
    query = urllib.parse.urlsplit(target).query
    body: dict = {}
    window: dict = {}
    for name, values in urllib.parse.parse_qs(query).items():
        mapping = _SUBSCRIBE_PARAMS.get(name)
        if mapping is None:
            if name in ("updates", "durable"):
                key = "emit_updates" if name == "updates" else "durable"
                body[key] = values[-1].lower() not in ("0", "false", "no")
                continue
            raise WireError(
                400, "bad_request", f"unknown /subscribe parameter {name!r}"
            )
        key, convert = mapping
        try:
            value = convert(values[-1])
        except ValueError:
            raise WireError(
                400,
                "bad_request",
                f"parameter {name!r} must be {convert.__name__}, got {values[-1]!r}",
            )
        if key in _WINDOW_KEYS:
            window[key] = value
        else:
            body[key] = value
    if window:
        body["window"] = window
    return body


class QueryService:
    """Routing + the admission/cache/execute flow, independent of transport.

    All handler methods run on one event loop; blocking execution happens
    in session submit pools (``/query``) or a dedicated producer thread
    (``/stream``), bridged back with futures and bounded queues.
    """

    #: Bound on SSE updates buffered ahead of a slow client.  The producer
    #: thread blocks on a full queue, which stalls sampling emission (not
    #: sampling itself - the run keeps converging) until the client drains.
    SSE_QUEUE_DEPTH = 64

    #: Frames each live SSE stream keeps for ``Last-Event-ID`` reconnects.
    RELAY_DEPTH = 256

    #: How long a disconnected stream waits for its client to come back
    #: before the run is cancelled and its ticket retired.
    RELAY_LINGER_S = 30.0

    def __init__(
        self,
        session: Session | None = None,
        *,
        sessions: int = 2,
        tenants: TenantRegistry | None = None,
        default_tenant_config: TenantConfig | None = None,
        cache_entries: int = 256,
        default_seed: int | None = 0,
    ) -> None:
        self.pool = SessionPool(session if session is not None else connect(), sessions)
        if tenants is not None and default_tenant_config is not None:
            raise ValueError("pass tenants or default_tenant_config, not both")
        self.tenants = tenants if tenants is not None else TenantRegistry(
            default_tenant_config
        )
        self.admission = AdmissionController(self.tenants)
        # default_seed=0 (not None) on purpose: identical requests must be
        # deterministic, or the shared cache could never serve two clients
        # the same bytes.  Clients wanting fresh randomness pass "seed".
        self.default_seed = default_seed
        self.cache = ResultCache(cache_entries).attach(self.pool.primary.catalog)
        # Durable subscriptions checkpoint through the catalog when it is
        # store-backed; a memory-only service simply rejects `durable`.
        catalog = self.pool.primary.catalog
        self._checkpoints = catalog if hasattr(catalog, "save_checkpoint") else None
        self._tickets: dict[str, _Ticket] = {}
        self._pumps: "set[asyncio.Task]" = set()
        self._auto_id = itertools.count(1)
        self._draining = False
        self._closed = False

    # -- routing -------------------------------------------------------------

    async def handle(self, method: str, target: str, headers: dict, body: bytes) -> _Response:
        path = target.split("?", 1)[0]
        if path == "/healthz" and method == "GET":
            return self._healthz()
        if path == "/readyz" and method == "GET":
            return self._readyz()
        if path == "/tables" and method == "GET":
            return self._tables()
        if path == "/stats" and method == "GET":
            return self._stats()
        # A draining server sheds new work but still serves reconnects
        # (Last-Event-ID) so in-flight streams can finish delivering.
        if (
            self._draining
            and (
                (path in ("/query", "/stream") and method == "POST")
                or (path == "/subscribe" and method in ("GET", "POST"))
            )
            and "last-event-id" not in headers
        ):
            return _json_response(
                503,
                error_payload("draining", "server is draining; no new work admitted"),
                headers=(("Retry-After", "2"),),
            )
        last_event = headers.get("last-event-id")
        if path in ("/query", "/stream") and method == "POST":
            parsed = parse_json_body(body)
            tenant = self._tenant_of(headers, parsed)
            if path == "/query":
                return await self._query(parsed, tenant)
            return await self._stream(parsed, tenant, last_event)
        if path == "/subscribe" and method in ("GET", "POST"):
            parsed = (
                _subscribe_params(target) if method == "GET" else parse_json_body(body)
            )
            tenant = self._tenant_of(headers, parsed)
            return await self._subscribe(parsed, tenant, last_event)
        if path.startswith("/query/") and method == "DELETE":
            return self._cancel(path[len("/query/"):])
        if path in ("/healthz", "/readyz", "/tables", "/stats", "/query", "/stream",
                    "/subscribe"):
            return _json_response(
                405, error_payload("method_not_allowed", f"{method} {path}")
            )
        return _json_response(404, error_payload("not_found", f"no route for {path}"))

    def _tenant_of(self, headers: dict, body: dict) -> str:
        tenant = headers.get("x-repro-tenant") or body.get("tenant") or DEFAULT_TENANT
        if not isinstance(tenant, str) or not tenant or len(tenant) > 200:
            raise WireError(400, "bad_request", "'tenant' must be a short string")
        return tenant

    # -- ops surface ---------------------------------------------------------

    def _healthz(self) -> _Response:
        return _json_response(
            200,
            {
                "status": "ok",
                "tables": len(self.pool.primary.tables),
                "sessions": len(self.pool),
                "inflight": len(self._tickets),
            },
        )

    def _readyz(self) -> _Response:
        """Readiness, distinct from liveness: a draining server is still
        alive (/healthz 200) but must be rotated out of load balancing."""
        if self._draining or self._closed:
            return _json_response(
                503,
                {"ready": False, "draining": True, "inflight": len(self._tickets)},
                headers=(("Retry-After", "2"),),
            )
        return _json_response(200, {"ready": True, "inflight": len(self._tickets)})

    @property
    def draining(self) -> bool:
        return self._draining

    @property
    def inflight(self) -> int:
        return len(self._tickets)

    def begin_drain(self) -> None:
        """Stop admitting new work; in-flight work keeps running."""
        self._draining = True

    def _tables(self) -> _Response:
        catalog = self.pool.primary.catalog
        tables = []
        for name in sorted(catalog.names):
            info = catalog.describe(name)
            tables.append(
                {
                    "name": info.name,
                    "kind": info.kind,
                    "description": info.description,
                    "columns": {c.name: c.kind for c in info.schema},
                    "rows": info.row_count_hint,
                    "table_cached": info.table_cached,
                    "cached_populations": len(info.cached_populations),
                }
            )
        return _json_response(200, {"tables": tables})

    def _stats(self) -> _Response:
        cache = self.cache.stats.to_dict()
        cache["entries"] = len(self.cache)
        return _json_response(
            200,
            {
                "tenants": self.tenants.snapshot(),
                "cache": cache,
                "inflight": len(self._tickets),
            },
        )

    # -- cancel --------------------------------------------------------------

    def _cancel(self, query_id: str) -> _Response:
        ticket = self._tickets.get(query_id)
        if ticket is None:
            return _json_response(
                404,
                error_payload(
                    "unknown_query", f"no in-flight query with id {query_id!r}"
                ),
            )
        # An explicit cancel is the user abandoning the subscription, so
        # its checkpoint goes too (set before cancel(): the pump reads the
        # flag after the runner joins).
        if ticket.checkpoint_id is not None:
            ticket.drop_checkpoint = True
        cancelled = ticket.cancel()
        return _json_response(
            200,
            {"query_id": query_id, "tenant": ticket.tenant, "cancelled": cancelled},
        )

    # -- execution helpers ---------------------------------------------------

    def _prepare(self, body: dict, tenant: str):
        """Parse + tenant-default a request; returns (spec, seed, key, state)."""
        state = self.tenants.state(tenant)
        request = build_query_request(
            body, self.pool.primary, default_seed=self.default_seed
        )
        spec = apply_tenant_defaults(request, state.config)
        key = (spec.canonical_key(), repr(request.seed))
        return request, spec, key, state

    def _register_ticket(self, requested_id: str | None, tenant: str) -> _Ticket:
        query_id = requested_id if requested_id is not None else f"q-{next(self._auto_id)}"
        if query_id in self._tickets:
            raise WireError(
                409, "duplicate_query_id", f"query id {query_id!r} is already in flight"
            )
        ticket = _Ticket(query_id=query_id, tenant=tenant)
        self._tickets[query_id] = ticket
        return ticket

    def _envelope(self, query_id: str, tenant: str, mode: str, result: Result) -> dict:
        # The embedded dict re-encodes byte-identically under canonical_json
        # (sorted keys, fixed separators), so every reader of one cached
        # entry - hit, shared, or the leader itself - gets the same bytes.
        return {
            "query_id": query_id,
            "tenant": tenant,
            "cache": mode,
            "result": result.to_dict(),
        }

    # -- SSE relay plumbing ---------------------------------------------------

    def _spawn_pump(self, coro) -> asyncio.Task:
        """Run an SSE producer as a loop task that outlives its consumer."""
        task = asyncio.get_running_loop().create_task(coro)
        self._pumps.add(task)
        task.add_done_callback(self._pumps.discard)
        return task

    async def _relay_consume(
        self, ticket: _Ticket, relay: _Relay, last_id: int
    ) -> AsyncIterator[bytes]:
        """The HTTP side of a relayed stream: frames after ``last_id``.

        On a terminal frame the query is over and the ticket retires.  On
        disconnect (generator close) the pump keeps running and a janitor
        gives the client ``RELAY_LINGER_S`` to reconnect before the run is
        cancelled.
        """
        loop = asyncio.get_running_loop()
        relay.attached = True
        pos = last_id
        delivered_terminal = False
        try:
            while True:
                frame = await loop.run_in_executor(None, relay.next_after, pos)
                if frame is None:
                    return
                fid, data, terminal = frame
                pos = fid
                yield data
                if terminal:
                    delivered_terminal = True
                    return
        finally:
            relay.attached = False
            if delivered_terminal:
                self._tickets.pop(ticket.query_id, None)
            else:
                self._schedule_relay_janitor(ticket, relay)

    def _schedule_relay_janitor(self, ticket: _Ticket, relay: _Relay) -> None:
        def expire() -> None:
            if relay.attached or self._tickets.get(ticket.query_id) is not ticket:
                return  # reconnected, or already retired
            ticket.cancel()
            relay.close()
            self._tickets.pop(ticket.query_id, None)

        try:
            loop = asyncio.get_running_loop()
        except RuntimeError:
            expire()  # loop already gone (shutdown): tear down now
            return
        loop.call_later(self.RELAY_LINGER_S, expire)

    def _resume_sse(self, query_id, last_event: str) -> _Response:
        """Re-attach a reconnecting client to its in-flight stream."""
        try:
            last_id = int(last_event)
        except (TypeError, ValueError):
            raise WireError(
                400,
                "bad_request",
                f"Last-Event-ID must be an integer event id, got {last_event!r}",
            )
        if not isinstance(query_id, str) or not query_id:
            raise WireError(
                400,
                "bad_request",
                "reconnecting with Last-Event-ID needs the original 'query_id'",
            )
        ticket = self._tickets.get(query_id)
        relay = ticket.relay if ticket is not None else None
        if relay is None or relay.gap(last_id):
            return _json_response(
                409,
                error_payload(
                    "replay_gap",
                    f"cannot resume {query_id!r} after event {last_id}: the "
                    "replay buffer no longer holds the next frame; restart "
                    "the query",
                ),
            )
        if relay.attached:
            return _json_response(
                409,
                error_payload(
                    "already_attached",
                    f"{query_id!r} already has a live consumer",
                ),
            )
        return _Response(
            200, self._relay_consume(ticket, relay, last_id), headers=SSE_HEADERS
        )

    # -- POST /query ---------------------------------------------------------

    async def _query(self, body: dict, tenant: str) -> _Response:
        request, spec, key, state = self._prepare(body, tenant)
        counters = state.counters

        cached = self.cache.get(key)
        if cached is not None:
            counters.cache_hits += 1
            result, _payload = cached
            return _json_response(
                200, self._envelope(f"q-{next(self._auto_id)}", tenant, "hit", result)
            )

        flight = self.cache.flight(key)
        if flight is not None:
            counters.singleflight_shared += 1
            result, _payload = await self.cache.follow(flight)
            return _json_response(
                200,
                self._envelope(f"q-{next(self._auto_id)}", tenant, "shared", result),
            )

        # Leader path.  No awaits between begin_flight and admission.submit,
        # so a shed leader fails its flight before any follower can attach.
        ticket = self._register_ticket(request.query_id, tenant)
        flight = self.cache.begin_flight(key, spec.table)
        admission: Admission | None = None
        try:
            admission = self.admission.submit(tenant)
            ticket.admission = admission
            await admission.wait()
            session = self.pool.next()
            qfuture = session.submit(spec, seed=request.seed)
            ticket.qfuture = qfuture
            counters.executed += 1
            try:
                result = await asyncio.wrap_future(qfuture.inner)
            except asyncio.CancelledError:
                if qfuture.cancelled() or qfuture.done():
                    raise QueryCancelled("query cancelled while running") from None
                qfuture.cancel()  # handler task itself was cancelled
                raise
            payload = canonical_json(result.to_dict())
            self.cache.complete_flight(flight, result, payload)
            counters.completed += 1
            if result.deadline_exceeded:
                counters.deadline_expired += 1
            return _json_response(
                200, self._envelope(ticket.query_id, tenant, "miss", result)
            )
        except QueryShed as exc:
            self.cache.fail_flight(flight, exc)
            raise
        except QueryCancelled as exc:
            counters.cancelled += 1
            self.cache.fail_flight(flight, exc)
            raise
        except BaseException as exc:
            if not isinstance(exc, asyncio.CancelledError):
                counters.errors += 1
            self.cache.fail_flight(flight, exc)
            raise
        finally:
            if admission is not None:
                admission.release()
            self._tickets.pop(ticket.query_id, None)

    # -- POST /stream --------------------------------------------------------

    async def _stream(
        self, body: dict, tenant: str, last_event: str | None = None
    ) -> _Response:
        if last_event is not None:
            return self._resume_sse(body.get("query_id"), last_event)
        request, spec, key, state = self._prepare(body, tenant)
        counters = state.counters

        cached = self.cache.get(key)
        if cached is not None:
            counters.cache_hits += 1
            result, _payload = cached
            qid = f"q-{next(self._auto_id)}"
            return _Response(
                200, self._replay_events(qid, tenant, "hit", result), headers=SSE_HEADERS
            )

        flight = self.cache.flight(key)
        if flight is not None:
            counters.singleflight_shared += 1
            result, _payload = await self.cache.follow(flight)
            qid = f"q-{next(self._auto_id)}"
            return _Response(
                200,
                self._replay_events(qid, tenant, "shared", result),
                headers=SSE_HEADERS,
            )

        ticket = self._register_ticket(request.query_id, tenant)
        flight = self.cache.begin_flight(key, spec.table)
        admission: Admission | None = None
        try:
            admission = self.admission.submit(tenant)
            ticket.admission = admission
            # Wait for the slot *before* streaming starts: shed and
            # queue-cancel surface as proper HTTP statuses, not mid-stream
            # error events.
            await admission.wait()
        except QueryShed as exc:
            self.cache.fail_flight(flight, exc)
            self._tickets.pop(ticket.query_id, None)
            if admission is not None:
                admission.release()
            raise
        except BaseException as exc:
            counters.cancelled += isinstance(exc, QueryCancelled)
            self.cache.fail_flight(flight, exc)
            self._tickets.pop(ticket.query_id, None)
            if admission is not None:
                admission.release()
            raise
        relay = _Relay(self.RELAY_DEPTH)
        ticket.relay = relay
        ticket.pump = self._spawn_pump(
            self._pump_stream(ticket, admission, flight, spec, request.seed, state, relay)
        )
        return _Response(
            200, self._relay_consume(ticket, relay, 0), headers=SSE_HEADERS
        )

    async def _replay_events(
        self, query_id: str, tenant: str, mode: str, result: Result
    ) -> AsyncIterator[bytes]:
        """SSE frames for an already-completed Result (cache hit / follower)."""
        n = 0
        for update in _replay_updates(result):
            n += 1
            yield sse_event(update.to_dict(), event="update", event_id=n)
        yield sse_event(
            self._envelope(query_id, tenant, mode, result), event="done", event_id=n + 1
        )

    async def _pump_stream(
        self, ticket, admission, flight, spec, seed, state, relay: _Relay
    ) -> None:
        """Produce SSE frames from a live run into the reconnect relay.

        Backpressure: the producer thread publishes into a bounded queue
        and blocks when the relay is full (client not keeping up); frame
        delivery happens in :meth:`_relay_consume`, which may detach and
        re-attach across reconnects while this pump keeps running.  When
        the relay is torn down (janitor expiry: the client never came
        back) the run's cancel token fires and the queue is drained until
        the producer exits.
        """
        counters = state.counters
        loop = asyncio.get_running_loop()
        q: "queue_mod.Queue[object]" = queue_mod.Queue(maxsize=self.SSE_QUEUE_DEPTH)
        deadline = Deadline.after_ms(spec.deadline_ms)
        ticket.deadline = deadline
        catalog = self.pool.primary.catalog.snapshot()
        counters.executed += 1

        def produce() -> None:
            try:
                stream = stream_spec(spec, catalog, seed=seed, deadline=deadline)
                for update in stream:
                    q.put(update)
                q.put(("result", stream.result))
            except BaseException as exc:  # delivered to the consumer
                q.put(("error", exc))

        thread = threading.Thread(target=produce, daemon=True, name="repro-serve-sse")
        thread.start()
        n = 0
        try:
            while True:
                item = await loop.run_in_executor(None, q.get)
                if isinstance(item, PartialUpdate):
                    n += 1
                    frame = sse_event(item.to_dict(), event="update", event_id=n)
                    await loop.run_in_executor(None, relay.append, frame)
                    continue
                kind, obj = item
                if kind == "result":
                    result = obj
                    payload = canonical_json(result.to_dict())
                    self.cache.complete_flight(flight, result, payload)
                    counters.completed += 1
                    if result.deadline_exceeded:
                        counters.deadline_expired += 1
                    frame = sse_event(
                        self._envelope(ticket.query_id, ticket.tenant, "miss", result),
                        event="done",
                        event_id=n + 1,
                    )
                else:
                    exc = obj
                    self.cache.fail_flight(flight, exc)
                    if isinstance(exc, QueryCancelled):
                        counters.cancelled += 1
                        code = "cancelled"
                    else:
                        counters.errors += 1
                        code = "internal"
                    frame = sse_event(
                        error_payload(code, str(exc)), event="error", event_id=n + 1
                    )
                try:
                    await loop.run_in_executor(
                        None, functools.partial(relay.append, frame, terminal=True)
                    )
                except _RelayClosed:
                    pass  # query finished, but nobody is left to tell
                return
        except _RelayClosed:
            # The janitor gave up waiting for a reconnect mid-stream.
            if self.cache.flight(flight.key) is flight:
                self.cache.fail_flight(
                    flight, QueryCancelled("stream client disconnected")
                )
                counters.cancelled += 1
            await loop.run_in_executor(None, _drain_queue, q, thread)
        finally:
            deadline.cancel()
            admission.release()

    # -- GET/POST /subscribe -------------------------------------------------

    #: Retry-after hint when a tenant is out of subscription slots.  Slots
    #: free on cancel/disconnect, not on a queue cadence, so the hint is a
    #: polling suggestion rather than an admission estimate.
    SUBSCRIPTION_RETRY_MS = 1000

    def _subscribe_request(self, body: dict, state):
        """Parse a subscription request: windowed spec + runner knobs."""
        request = build_query_request(
            body, self.pool.primary, default_seed=self.default_seed
        )
        spec = apply_tenant_defaults(request, state.config)
        window = body.get("window")
        if window is not None:
            if spec.window is not None:
                raise WireError(
                    400,
                    "bad_request",
                    "window given both in the spec and the 'window' field",
                )
            try:
                spec = dataclasses.replace(spec, window=WindowSpec.from_dict(window))
            except (TypeError, ValueError) as exc:
                raise WireError(400, "bad_window", f"cannot build window: {exc}")
        if spec.window is None:
            raise WireError(
                400,
                "bad_request",
                "/subscribe needs a windowed query: pass a 'window' object "
                "(window_size=... on GET) or a spec that carries one",
            )
        max_windows = body.get("max_windows")
        if max_windows is not None and (
            not isinstance(max_windows, int)
            or isinstance(max_windows, bool)
            or max_windows < 1
        ):
            raise WireError(400, "bad_request", "'max_windows' must be an integer >= 1")
        emit_updates = body.get("emit_updates", True)
        if not isinstance(emit_updates, bool):
            raise WireError(400, "bad_request", "'emit_updates' must be a boolean")
        durable = body.get("durable", False)
        if not isinstance(durable, bool):
            raise WireError(400, "bad_request", "'durable' must be a boolean")
        return request, spec, max_windows, emit_updates, durable

    async def _subscribe(
        self, body: dict, tenant: str, last_event: str | None = None
    ) -> _Response:
        if last_event is not None:
            return self._resume_sse(body.get("query_id"), last_event)
        state = self.tenants.state(tenant)
        request, spec, max_windows, emit_updates, durable = self._subscribe_request(
            body, state
        )
        checkpoint_id = None
        if durable:
            # A durable subscription checkpoints each emitted window; after
            # a server restart the client re-subscribes with the same
            # query_id (+ identical query) and continues where it left off.
            if self._checkpoints is None:
                raise WireError(
                    400,
                    "bad_request",
                    "'durable' needs a store-backed service (repro serve --store)",
                )
            if request.query_id is None:
                raise WireError(
                    400,
                    "bad_request",
                    "'durable' subscriptions need an explicit 'query_id' "
                    "(it names the checkpoint to resume)",
                )
            checkpoint_id = f"sub-{tenant}-{request.query_id}"
        # Subscription slots, not the execution queue: a subscription lives
        # for many windows and is shed (never queued) when the tenant is at
        # max_subscriptions.  Results are never cached - every window is
        # fresh work over rows the cache has not seen.
        if state.subscriptions >= state.config.max_subscriptions:
            state.counters.shed += 1
            raise QueryShed(tenant, retry_after_ms=self.SUBSCRIPTION_RETRY_MS)
        ticket = self._register_ticket(request.query_id, tenant)
        ticket.checkpoint_id = checkpoint_id
        try:
            cq = self.pool.next().subscribe(
                spec,
                seed=request.seed,
                max_windows=max_windows,
                emit_updates=emit_updates,
                checkpoint=checkpoint_id,
                resume=checkpoint_id is not None,
            )
        except BaseException as exc:
            self._tickets.pop(ticket.query_id, None)
            if checkpoint_id is not None and isinstance(exc, ValueError):
                raise WireError(409, "checkpoint_mismatch", str(exc))
            raise
        ticket.subscription = cq
        state.subscriptions += 1
        state.counters.subscriptions_started += 1
        relay = _Relay(self.RELAY_DEPTH)
        ticket.relay = relay
        ticket.pump = self._spawn_pump(
            self._pump_subscription(ticket, cq, state, relay)
        )
        return _Response(
            200, self._relay_consume(ticket, relay, 0), headers=SSE_HEADERS
        )

    async def _pump_subscription(
        self, ticket: _Ticket, cq: ContinuousQuery, state, relay: _Relay
    ) -> None:
        """Produce SSE frames for one live subscription into its relay.

        The :class:`ContinuousQuery` produces on its own daemon thread into
        an unbounded queue; this pump consumes one event per executor hop,
        so a slow client buffers window events without stalling the stream
        scan.  ``DELETE /query/{id}`` (or janitor expiry after a client
        never reconnects) cancels the runner; cancellation ends the stream
        with a clean ``done`` event (``cancelled: true``), while runner
        failures become a terminal ``error`` event.  A durable
        subscription's checkpoint is deleted on natural completion or
        explicit cancel, and retained on failure/abandonment so a later
        resume can continue.
        """
        counters = state.counters
        loop = asyncio.get_running_loop()
        events = cq.updates()
        windows = 0
        n = 0
        try:
            while True:
                item = await loop.run_in_executor(None, next, events, _SUB_DONE)
                if item is _SUB_DONE:
                    frame = sse_event(
                        {
                            "query_id": ticket.query_id,
                            "tenant": ticket.tenant,
                            "windows": windows,
                            "cancelled": cq.cancelled,
                            "stats": cq.stats(),
                        },
                        event="done",
                        event_id=n + 1,
                    )
                    try:
                        await loop.run_in_executor(
                            None, functools.partial(relay.append, frame, terminal=True)
                        )
                    except _RelayClosed:
                        pass
                    return
                n += 1
                if isinstance(item, WindowResult):
                    windows += 1
                    counters.windows_emitted += 1
                    frame = sse_event(item.to_dict(), event="window", event_id=n)
                else:
                    frame = sse_event(item.to_dict(), event="update", event_id=n)
                await loop.run_in_executor(None, relay.append, frame)
        except _RelayClosed:
            pass  # janitor expired the relay; the finally cancels the runner
        except Exception as exc:  # runner failure -> terminal error event
            counters.errors += 1
            frame = sse_event(
                error_payload("internal", f"{type(exc).__name__}: {exc}"),
                event="error",
                event_id=n + 1,
            )
            try:
                await loop.run_in_executor(
                    None, functools.partial(relay.append, frame, terminal=True)
                )
            except _RelayClosed:
                pass
        finally:
            cq.cancel()
            state.subscriptions -= 1
            await loop.run_in_executor(None, cq.join, 30)
            # Checkpoint retirement happens after join, once `cancelled`
            # has settled: completion and user-cancel drop it; failure,
            # abandonment, and shutdown keep it for a later resume.
            if (
                ticket.checkpoint_id is not None
                and self._checkpoints is not None
                and (
                    ticket.drop_checkpoint
                    or (not cq.cancelled and cq.error is None)
                )
            ):
                try:
                    self._checkpoints.delete_checkpoint(ticket.checkpoint_id)
                except Exception:
                    pass  # a live checkpoint is merely a resume offer

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Cancel in-flight queries and close every session.

        After this returns the submit pools are drained, every engine
        fan-out pool is released, and (asserted by the CI smoke) the
        shared-memory registry is empty.
        """
        if self._closed:
            return
        self._closed = True
        for ticket in list(self._tickets.values()):
            ticket.cancel()
            if ticket.relay is not None:
                # Unblock any pump parked in relay.append so its executor
                # thread cannot hang process exit.
                ticket.relay.close()
        self.pool.close()


def _drain_queue(q: "queue_mod.Queue", thread: threading.Thread) -> None:
    """Unblock and join an SSE producer after its consumer went away."""
    while thread.is_alive():
        try:
            q.get(timeout=0.05)
        except queue_mod.Empty:
            pass
        thread.join(timeout=0.0)
    try:
        while True:
            q.get_nowait()
    except queue_mod.Empty:
        pass


# --------------------------------------------------------------------------
# HTTP layer
# --------------------------------------------------------------------------


class ReproServer:
    """A minimal HTTP/1.1 front end over one :class:`QueryService`.

    Deliberately not a web framework: request line + headers +
    Content-Length body in, status + JSON (or an SSE stream) out,
    keep-alive except on streams.  Anything fancier (TLS, chunked bodies,
    HTTP/2) belongs in a reverse proxy in front.
    """

    MAX_BODY = 8 * 1024 * 1024

    def __init__(
        self, service: QueryService, host: str = "127.0.0.1", port: int = 0
    ) -> None:
        self.service = service
        self.host = host
        self.port = port
        self._server: asyncio.AbstractServer | None = None

    async def start(self) -> "ReproServer":
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def aclose(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self.service.close()
        pumps = {t for t in getattr(self.service, "_pumps", ()) if not t.done()}
        if pumps:
            await asyncio.wait(pumps, timeout=10)

    # -- connection handling -------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break
                method, target, version, headers, body = request
                response = await self._dispatch(method, target, headers, body)
                streaming = not isinstance(response.body, (bytes, bytearray))
                self._write_head(writer, response, streaming)
                if streaming:
                    agen = response.body
                    try:
                        async for chunk in agen:
                            writer.write(chunk)
                            await writer.drain()
                    finally:
                        await agen.aclose()
                    break  # SSE responses are Connection: close
                writer.write(response.body)
                await writer.drain()
                if version != "HTTP/1.1" or headers.get("connection", "").lower() == "close":
                    break
        except (ConnectionError, asyncio.IncompleteReadError, asyncio.LimitOverrunError):
            pass  # client went away mid-request; per-query cleanup already ran
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(self, reader: asyncio.StreamReader):
        line = await reader.readline()
        if not line or line in (b"\r\n", b"\n"):
            return None
        try:
            method, target, version = line.decode("latin-1").split()
        except ValueError:
            return None
        headers: dict[str, str] = {}
        while True:
            raw = await reader.readline()
            if raw in (b"", b"\r\n", b"\n"):
                break
            name, _, value = raw.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", 0) or 0)
        if length < 0 or length > self.MAX_BODY:
            return None
        body = await reader.readexactly(length) if length else b""
        return method.upper(), target, version, headers, body

    async def _dispatch(
        self, method: str, target: str, headers: dict, body: bytes
    ) -> _Response:
        try:
            return await self.service.handle(method, target, headers, body)
        except WireError as exc:
            return _json_response(exc.status, exc.payload())
        except QueryShed as exc:
            return _json_response(
                429,
                error_payload(
                    "shed",
                    str(exc),
                    tenant=exc.tenant,
                    retry_after_ms=exc.retry_after_ms,
                ),
                headers=(("Retry-After", str(max(1, -(-exc.retry_after_ms // 1000)))),),
            )
        except QueryCancelled as exc:
            return _json_response(499, error_payload("cancelled", str(exc)))
        except Exception as exc:
            return _json_response(
                500, error_payload("internal", f"{type(exc).__name__}: {exc}")
            )

    def _write_head(
        self, writer: asyncio.StreamWriter, response: _Response, streaming: bool
    ) -> None:
        reason = _REASONS.get(response.status, "Unknown")
        lines = [f"HTTP/1.1 {response.status} {reason}"]
        header_names = {name.lower() for name, _ in response.headers}
        if "content-type" not in header_names:
            lines.append(f"Content-Type: {response.content_type}")
        for name, value in response.headers:
            lines.append(f"{name}: {value}")
        if not streaming:
            lines.append(f"Content-Length: {len(response.body)}")
        writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1"))


# --------------------------------------------------------------------------
# Entry points
# --------------------------------------------------------------------------


class ServerHandle:
    """A running server on a background thread (tests, benchmarks)."""

    def __init__(self) -> None:
        self.port: int | None = None
        self.thread: threading.Thread | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Future | None = None
        self.error: BaseException | None = None

    @property
    def url(self) -> str:
        return f"http://127.0.0.1:{self.port}"

    def stop(self) -> None:
        """Shut the server down and join its thread (idempotent)."""
        loop, self._loop = self._loop, None
        if loop is not None and self._stop is not None:
            loop.call_soon_threadsafe(
                lambda: self._stop.done() or self._stop.set_result(None)
            )
        if self.thread is not None:
            self.thread.join(timeout=60)


def serve_in_thread(
    service: QueryService, host: str = "127.0.0.1", port: int = 0
) -> ServerHandle:
    """Start a server on a daemon thread; returns once it is accepting."""
    handle = ServerHandle()
    started = threading.Event()

    def main() -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        server = ReproServer(service, host=host, port=port)
        try:
            loop.run_until_complete(server.start())
        except BaseException as exc:
            handle.error = exc
            started.set()
            loop.close()
            return
        handle.port = server.port
        handle._loop = loop
        handle._stop = loop.create_future()
        started.set()
        try:
            loop.run_until_complete(handle._stop)
        finally:
            loop.run_until_complete(server.aclose())
            loop.close()

    handle.thread = threading.Thread(target=main, daemon=True, name="repro-serve")
    handle.thread.start()
    started.wait(timeout=60)
    if handle.error is not None:
        raise handle.error
    return handle


def run_server(
    service: QueryService,
    host: str = "127.0.0.1",
    port: int = 8765,
    *,
    drain_timeout: float | None = 30.0,
    announce=print,
) -> None:
    """Run the server in the foreground until SIGINT/SIGTERM (the CLI path).

    SIGINT stops immediately.  SIGTERM *drains*: ``/readyz`` flips to 503
    (rotate this instance out of load balancing), new work is shed with
    ``Retry-After``, and in-flight queries get up to ``drain_timeout``
    seconds to finish before cooperative cancellation - queries are
    anytime, so a drain-cancelled query still finalizes a valid partial
    answer.  Either way the process exits 0.
    """

    async def main() -> None:
        server = await ReproServer(service, host=host, port=port).start()
        loop = asyncio.get_running_loop()
        stop: asyncio.Future = loop.create_future()

        def request_stop(mode: str) -> None:
            if not stop.done():
                stop.set_result(mode)

        try:
            import signal

            loop.add_signal_handler(signal.SIGINT, request_stop, "stop")
            loop.add_signal_handler(signal.SIGTERM, request_stop, "drain")
        except (ImportError, NotImplementedError, RuntimeError):
            pass  # platforms without loop signal handlers: Ctrl-C still raises
        # Announce only after the handlers are live: "listening" is the
        # operator's cue that SIGTERM now drains instead of killing.
        announce(f"repro serve listening on http://{host}:{server.port}")
        try:
            mode = await stop
        except asyncio.CancelledError:
            mode = "stop"
        if mode == "drain" and drain_timeout is not None:
            service.begin_drain()
            announce(
                f"repro serve draining ({service.inflight} in flight; /readyz now 503)"
            )
            drain_until = loop.time() + drain_timeout
            while service.inflight and loop.time() < drain_until:
                await asyncio.sleep(0.05)
            if service.inflight:
                announce(
                    f"repro serve drain timed out; cancelling {service.inflight} in flight"
                )
                # Cancel but do NOT close relays: connected clients still
                # get their terminal frame (queries are anytime); aclose()
                # force-closes whatever remains.
                for ticket in list(service._tickets.values()):
                    ticket.cancel()
                grace_until = loop.time() + 5.0
                while service.inflight and loop.time() < grace_until:
                    await asyncio.sleep(0.05)
        await server.aclose()
        announce("repro serve stopped")

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        pass
