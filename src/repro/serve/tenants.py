"""Tenant model for the query service: quotas, defaults, and counters.

A *tenant* is one logical consumer of the service - a dashboard deployment,
a team, an API key.  Each tenant carries:

* an execution quota (``max_concurrent``) - how many of its queries may
  sample at once;
* a bounded admission queue (``queue_limit``) - how many more may wait for
  a slot before the service sheds load (:class:`~repro.serve.admission.QueryShed`);
* default query knobs (``deadline_ms``, ``max_retries``) applied to any
  submitted :class:`~repro.session.spec.QuerySpec` that did not pin its own;
* live :class:`TenantCounters` exported by ``GET /stats``.

Requests name their tenant with the ``X-Repro-Tenant`` header (or the
``tenant`` body field); unnamed requests run as :data:`DEFAULT_TENANT`.
Unknown tenants inherit the registry's default config, so the service is
usable without pre-provisioning while still isolating the tenants that are.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

__all__ = ["DEFAULT_TENANT", "TenantConfig", "TenantCounters", "TenantRegistry"]

#: The tenant unnamed requests run as.
DEFAULT_TENANT = "public"


@dataclass(frozen=True)
class TenantConfig:
    """One tenant's quotas and per-query defaults.

    Attributes:
        max_concurrent: executions this tenant may have sampling at once.
        queue_limit: admission-queue depth beyond the quota; a submit
            arriving with the queue full is *shed* (structured 429 + a
            retry-after hint), never queued unboundedly.
        deadline_ms: default ``QuerySpec.deadline_ms`` for this tenant's
            queries (anytime stop; ``None`` = unlimited).  A spec that set
            its own deadline keeps it.
        max_retries: default transient-scan retry budget; ``None`` keeps
            each spec's own value.
        max_subscriptions: concurrent long-lived ``/subscribe`` streams
            this tenant may hold open.  Subscriptions are gated here rather
            than through the execution admission queue - a subscription
            lives for many windows, and parking it in an execution slot
            would starve the tenant's one-shot queries for its entire
            lifetime.  Excess subscriptions are shed (429), never queued.
    """

    max_concurrent: int = 4
    queue_limit: int = 16
    deadline_ms: float | None = None
    max_retries: int | None = None
    max_subscriptions: int = 4

    def __post_init__(self) -> None:
        if int(self.max_concurrent) < 1:
            raise ValueError(f"max_concurrent must be >= 1, got {self.max_concurrent}")
        if int(self.queue_limit) < 0:
            raise ValueError(f"queue_limit must be >= 0, got {self.queue_limit}")
        if self.deadline_ms is not None and float(self.deadline_ms) <= 0:
            raise ValueError(f"deadline_ms must be > 0, got {self.deadline_ms}")
        if self.max_retries is not None and int(self.max_retries) < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if int(self.max_subscriptions) < 0:
            raise ValueError(
                f"max_subscriptions must be >= 0, got {self.max_subscriptions}"
            )


@dataclass
class TenantCounters:
    """Monotonic per-tenant accounting, exported by ``GET /stats``.

    ``admitted`` counts queries granted an execution slot (immediately or
    after queueing); ``executed`` counts runs actually started (cache
    followers are admitted-free *and* execution-free).  The end-to-end
    single-flight proof in the test suite is ``executed == 1`` with
    ``cache_hits + singleflight_shared == N - 1``.
    """

    admitted: int = 0
    queued: int = 0
    shed: int = 0
    cancelled: int = 0
    executed: int = 0
    completed: int = 0
    errors: int = 0
    cache_hits: int = 0
    singleflight_shared: int = 0
    deadline_expired: int = 0
    subscriptions_started: int = 0
    windows_emitted: int = 0

    def to_dict(self) -> dict:
        return asdict(self)


@dataclass
class _TenantState:
    """Config + counters + live admission state for one tenant."""

    name: str
    config: TenantConfig
    counters: TenantCounters = field(default_factory=TenantCounters)
    running: int = 0
    # Waiters are asyncio futures appended in arrival order; admission
    # transfers slots FIFO.  Stored here (not in the controller) so /stats
    # can report live queue depth per tenant.
    waiters: list = field(default_factory=list)
    # Live gauge of open /subscribe streams (the monotonic starts/windows
    # counts live in TenantCounters).
    subscriptions: int = 0

    def snapshot(self) -> dict:
        return {
            "config": {
                "max_concurrent": self.config.max_concurrent,
                "queue_limit": self.config.queue_limit,
                "deadline_ms": self.config.deadline_ms,
                "max_retries": self.config.max_retries,
                "max_subscriptions": self.config.max_subscriptions,
            },
            "running": self.running,
            "queued_now": len(self.waiters),
            "subscriptions": self.subscriptions,
            "counters": self.counters.to_dict(),
        }


class TenantRegistry:
    """Named tenant configs plus live state, lazily instantiated.

    ``configure(name, config)`` provisions a tenant explicitly; any other
    name materializes on first use with ``default_config``.  All access
    happens on the service event loop, so no locking is needed.
    """

    def __init__(self, default_config: TenantConfig | None = None) -> None:
        self.default_config = default_config or TenantConfig()
        self._tenants: dict[str, _TenantState] = {}

    def configure(self, name: str, config: TenantConfig) -> "TenantRegistry":
        state = self._tenants.get(name)
        if state is not None:
            state.config = config
        else:
            self._tenants[name] = _TenantState(name=name, config=config)
        return self

    def state(self, name: str) -> _TenantState:
        state = self._tenants.get(name)
        if state is None:
            state = _TenantState(name=name, config=self.default_config)
            self._tenants[name] = state
        return state

    def counters(self, name: str) -> TenantCounters:
        return self.state(name).counters

    def snapshot(self) -> dict:
        """``{tenant: state}`` for ``GET /stats`` (sorted for stable JSON)."""
        return {
            name: self._tenants[name].snapshot() for name in sorted(self._tenants)
        }
