"""The shared result cache: canonical spec -> completed Result, single-flight.

The service's whole economic argument (and the paper's: many dashboards,
one dataset) is that identical queries should cost one execution.  Two
mechanisms deliver that:

* **Result cache** - completed queries are stored under
  ``(QuerySpec.canonical_key(), seed)``.  The key is the canonicalized
  spec JSON, so the SQL door, the builder door, and raw wire specs all hit
  the same entry; the seed is part of the key because results are
  bit-functions of it.  Entries are LRU-bounded and shared across
  *tenants* - quotas meter execution, not answers.
* **Single-flight** - concurrent identical queries collapse onto one
  execution: the first becomes the *leader* (admitted, executed, cached),
  the rest become *followers* awaiting the leader's future.  Followers
  consume no admission slot and no execution; they receive the leader's
  outcome - including its error, if it fails or is cancelled - because the
  execution genuinely was shared.

Freshness is tied into the catalog: the cache subscribes to
:meth:`repro.catalog.Catalog.subscribe_invalidation`, so
``Session.invalidate(name)`` or re-registering a source under ``name``
both (a) drop every cached entry for that table and (b) bump the table's
*generation*, which vetoes caching of any in-flight execution that started
against the old data.  A re-registered CSV can therefore never serve a
stale cached Result, even across the invalidate/complete race.

Results that expired their deadline are returned to their requesters but
never cached: they are valid *anytime* answers for the caller that ran out
of budget, not the query's answer.
"""

from __future__ import annotations

import asyncio
import threading
from collections import OrderedDict
from dataclasses import dataclass, field

from repro.session.result import Result

__all__ = ["CacheStats", "ResultCache", "Flight"]

#: A cache key: (QuerySpec.canonical_key(), seed-as-string).
CacheKey = tuple[str, str]


@dataclass
class CacheStats:
    """Service-wide cache accounting (per-tenant counts live on tenants)."""

    hits: int = 0
    misses: int = 0
    shared: int = 0
    stored: int = 0
    evicted: int = 0
    invalidated: int = 0
    uncacheable: int = 0

    def to_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "shared": self.shared,
            "stored": self.stored,
            "evicted": self.evicted,
            "invalidated": self.invalidated,
            "uncacheable": self.uncacheable,
        }


@dataclass
class _Entry:
    table: str
    result: Result
    payload: bytes  # the encoded "result" JSON, byte-identical for every reader


@dataclass
class Flight:
    """One in-flight leader execution identical queries collapse onto."""

    key: CacheKey
    table: str
    generation: int
    future: "asyncio.Future[tuple[Result, bytes]]"
    followers: int = field(default=0)


class ResultCache:
    """LRU result cache + single-flight registry, invalidation-aware.

    Entry/generation state is guarded by a lock because catalog
    invalidation listeners may fire from any thread (``Session.invalidate``
    is plain sync code); the single-flight registry is touched only on the
    service event loop.
    """

    def __init__(self, max_entries: int = 256) -> None:
        if max_entries < 0:
            raise ValueError(f"max_entries must be >= 0, got {max_entries}")
        self.max_entries = max_entries
        self.stats = CacheStats()
        self._entries: "OrderedDict[CacheKey, _Entry]" = OrderedDict()
        self._generations: dict[str, int] = {}
        self._inflight: dict[CacheKey, Flight] = {}
        self._lock = threading.Lock()

    # -- catalog hookup ------------------------------------------------------

    def attach(self, catalog) -> "ResultCache":
        """Subscribe to a catalog's invalidation events (see module doc)."""
        catalog.subscribe_invalidation(self.invalidate_table)
        return self

    def invalidate_table(self, table: str) -> int:
        """Drop every entry for ``table``; veto in-flight caching. Returns drops."""
        with self._lock:
            self._generations[table] = self._generations.get(table, 0) + 1
            stale = [k for k, e in self._entries.items() if e.table == table]
            for key in stale:
                del self._entries[key]
            self.stats.invalidated += len(stale)
        return len(stale)

    def generation(self, table: str) -> int:
        with self._lock:
            return self._generations.get(table, 0)

    # -- lookup / store ------------------------------------------------------

    def get(self, key: CacheKey) -> "tuple[Result, bytes] | None":
        """A cached (Result, payload) pair, LRU-refreshed; None on miss."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return entry.result, entry.payload

    def flight(self, key: CacheKey) -> Flight | None:
        """The in-flight leader for ``key``, if any (event loop only)."""
        return self._inflight.get(key)

    def begin_flight(self, key: CacheKey, table: str) -> Flight:
        """Register this execution as the key's leader (event loop only)."""
        if key in self._inflight:
            raise RuntimeError(f"flight already in progress for {key!r}")
        flight = Flight(
            key=key,
            table=table,
            generation=self.generation(table),
            future=asyncio.get_running_loop().create_future(),
        )
        self._inflight[key] = flight
        return flight

    def complete_flight(
        self, flight: Flight, result: Result, payload: bytes
    ) -> bool:
        """Store the leader's result (unless vetoed) and wake followers.

        Returns True when the result entered the cache; False when it was
        uncacheable: a deadline-expired anytime answer, or the table was
        invalidated after the flight began (the generation check closes the
        invalidate-during-execution race).
        """
        self._inflight.pop(flight.key, None)
        if not flight.future.done():
            flight.future.set_result((result, payload))
        cacheable = not result.deadline_exceeded and self.max_entries > 0
        with self._lock:
            if cacheable and self._generations.get(flight.table, 0) == flight.generation:
                self._entries[flight.key] = _Entry(flight.table, result, payload)
                self._entries.move_to_end(flight.key)
                self.stats.stored += 1
                while len(self._entries) > self.max_entries:
                    self._entries.popitem(last=False)
                    self.stats.evicted += 1
                return True
            self.stats.uncacheable += 1
        return False

    def fail_flight(self, flight: Flight, exc: BaseException) -> None:
        """Propagate the leader's failure to any followers; cache nothing."""
        self._inflight.pop(flight.key, None)
        if not flight.future.done():
            flight.future.set_exception(exc)
            if flight.followers == 0:
                # With no followers the exception is never awaited; mark it
                # retrieved so the loop does not log it at GC time.
                flight.future.exception()

    async def follow(self, flight: Flight) -> "tuple[Result, bytes]":
        """Await the leader's outcome (single-flight follower path)."""
        flight.followers += 1
        self.stats.shared += 1
        # shield: a follower's disconnect must not cancel the shared future.
        return await asyncio.shield(flight.future)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)
