"""repro - rapid sampling for visualizations with ordering guarantees.

A complete Python reproduction of "Rapid Sampling for Visualizations with
Ordering Guarantees" (Kim, Blais, Parameswaran, Indyk, Madden, Rubinfeld;
VLDB 2015): the IFOCUS family of sampling algorithms, the IREFINE and
ROUNDROBIN comparison points, the NEEDLETAIL bitmap-index sampling substrate,
the Section 6 extensions, and an experiment harness regenerating every figure
and table in the paper's evaluation.

Quickstart::

    import numpy as np
    from repro import InMemoryEngine, run_ifocus

    rng = np.random.default_rng(0)
    engine = InMemoryEngine.from_arrays(
        names=["AA", "JB", "UA"],
        arrays=[rng.normal(mu, 10, 100_000).clip(0, 100) for mu in (30, 15, 85)],
        c=100.0,
    )
    result = run_ifocus(engine, delta=0.05, seed=42)
    print(result.order(), result.total_samples)
"""

from repro.core import (
    OrderingResult,
    algorithm_names,
    run_algorithm,
    run_ifocus,
    run_ifocus_reference,
    run_irefine,
    run_roundrobin,
    run_scan,
)
from repro.data import Population
from repro.engines import InMemoryEngine

__version__ = "1.0.0"

__all__ = [
    "OrderingResult",
    "algorithm_names",
    "run_algorithm",
    "run_ifocus",
    "run_ifocus_reference",
    "run_irefine",
    "run_roundrobin",
    "run_scan",
    "Population",
    "InMemoryEngine",
    "__version__",
]
