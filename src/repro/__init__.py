"""repro - rapid sampling for visualizations with ordering guarantees.

A complete Python reproduction of "Rapid Sampling for Visualizations with
Ordering Guarantees" (Kim, Blais, Parameswaran, Indyk, Madden, Rubinfeld;
VLDB 2015): the IFOCUS family of sampling algorithms, the IREFINE and
ROUNDROBIN comparison points, the NEEDLETAIL bitmap-index sampling substrate,
the Section 6 extensions, and an experiment harness regenerating every figure
and table in the paper's evaluation.

The **Session API** is the primary surface: one front door for every
workload, with SQL text and a fluent builder lowering to the same query IR.
Data enters through the pluggable **catalog** (:mod:`repro.catalog`): lazy
:class:`DataSource` objects (in-memory, chunked CSV, Parquet, synthetic
specs, iterators) with cached builds and WHERE pushdown into the source
scan.

Quickstart::

    import numpy as np
    import repro

    rng = np.random.default_rng(0)
    session = repro.connect(delta=0.05)
    session.register("delays", {
        "airline": np.repeat(["AA", "JB", "UA"], 100_000),
        "delay": np.concatenate(
            [rng.normal(mu, 10, 100_000).clip(0, 100) for mu in (30, 15, 85)]
        ),
    })

    result = (
        session.table("delays")
        .group_by("airline")
        .agg(repro.avg("delay"))
        .run(seed=42)
    )
    print(result.first.order(), result.total_samples)

    # the SQL front door lowers to the same QuerySpec:
    same = session.sql(
        "SELECT airline, AVG(delay) FROM delays GROUP BY airline"
    ).run(seed=42)

    # every workload also streams - bars appear the moment they're trustworthy:
    for update in session.table("delays").group_by("airline").agg(
        repro.avg("delay")
    ).stream(seed=42):
        print(update.group.label, update.group.estimate)

Guarantee variants chain onto any query: ``.top(5)`` (§6.1.2), ``.trends()``
(§6.1.1), ``.values(within=2.0)`` (§6.2.1), ``.mistakes(0.9)`` (§6.1.3),
``.guarantee(delta=..., resolution=...)`` (Problem 2), and
``.on_engine("memory" | "needletail" | "noindex")`` picks the substrate.

Migration from the deprecated pre-Session entrypoints (all keep working
throughout 1.x, each emits a :class:`DeprecationWarning`):

=============================  =============================================
Legacy entrypoint              Session API equivalent
=============================  =============================================
``run_ifocus(engine)``         ``session.table(t).group_by(X).agg(avg(Y)).run()``
``run_ifocus_sum(engine)``     ``....agg(total(Y)).run()``
``run_count_known(engine)``    ``....agg(count("*")).run()``
``run_ifocus_multi_avg(...)``  ``....agg(avg(Y), avg(Z)).run()``
``run_multi_groupby(...)``     ``....group_by(X, Z).agg(avg(Y)).run()``
``run_ifocus_topt(engine, t)`` ``....agg(avg(Y)).top(t).run()``
``run_ifocus_trends(engine)``  ``....agg(avg(Y)).trends().run()``
``run_ifocus_values(...)``     ``....agg(avg(Y)).values(within=d).run()``
``run_ifocus_mistakes(...)``   ``....agg(avg(Y)).mistakes(gamma).run()``
``run_noindex(engine)``        ``....agg(avg(Y)).on_engine("noindex").run()``
``run_ifocus_partial(...)``    ``for u in ....stream(): ...``
``stream_partial_results(..)`` ``....stream()``
``execute_query(sql, tables)`` ``session.sql(sql).run()``
=============================  =============================================

The algorithm layer (``run_irefine``, ``run_roundrobin``, ``run_scan``,
``run_ifocus_reference``, ``run_algorithm``) stays public and undeprecated:
it is what the Session planner itself dispatches to, reachable from the
Session API via ``.using("irefine")`` etc.
"""

from repro.core import (
    OrderingResult,
    algorithm_names,
    run_algorithm,
    run_ifocus,
    run_ifocus_reference,
    run_irefine,
    run_roundrobin,
    run_scan,
)
from repro.catalog import (
    Catalog,
    CSVSource,
    DataSource,
    IteratorSource,
    ParquetSource,
    Schema,
    SourceSpec,
    SyntheticSource,
    TableSource,
)
from repro.storage import DurableCatalog, Store
from repro.data import Population
from repro.engines import InMemoryEngine, ShardedEngine
from repro.errors import (
    FatalError,
    QueryCancelled,
    ReproError,
    TransientError,
    WorkerCrashed,
)
from repro.session import (
    GroupEstimate,
    GuaranteeSpec,
    PartialUpdate,
    QueryBuilder,
    QueryFuture,
    QuerySpec,
    Result,
    ResultStream,
    Session,
    avg,
    connect,
    count,
    load_csv_table,
    register_engine,
    sum_,
    total,
)
from repro.streaming import ContinuousQuery, WindowResult, WindowSpec

__version__ = "1.2.0"

__all__ = [
    # Session API (primary surface)
    "connect",
    "Session",
    "QueryBuilder",
    "QuerySpec",
    "GuaranteeSpec",
    "Result",
    "GroupEstimate",
    "PartialUpdate",
    "ResultStream",
    "avg",
    "total",
    "sum_",
    "count",
    "register_engine",
    "load_csv_table",
    "QueryFuture",
    # continuous windowed queries (repro.streaming)
    "WindowSpec",
    "WindowResult",
    "ContinuousQuery",
    # error taxonomy / resilience
    "ReproError",
    "TransientError",
    "FatalError",
    "WorkerCrashed",
    "QueryCancelled",
    # data layer (repro.catalog) + durable storage (repro.storage)
    "Catalog",
    "SourceSpec",
    "DurableCatalog",
    "Store",
    "DataSource",
    "Schema",
    "TableSource",
    "CSVSource",
    "ParquetSource",
    "SyntheticSource",
    "IteratorSource",
    # algorithm layer
    "OrderingResult",
    "algorithm_names",
    "run_algorithm",
    "run_ifocus",
    "run_ifocus_reference",
    "run_irefine",
    "run_roundrobin",
    "run_scan",
    "Population",
    "InMemoryEngine",
    "ShardedEngine",
    "__version__",
]
