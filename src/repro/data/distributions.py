"""Value distributions used to build synthetic populations (paper Section 5.2).

Every distribution exposes an *analytic* population mean, which serves two
purposes: it is the ground truth mu_i for virtual (non-materialized) groups,
and it lets the experiment harness compute the difficulty proxy c^2/eta^2
(Fig. 6(c), Fig. 7(c)) without sampling.

All distributions here have bounded support [lo, hi] - the paper's algorithms
require values in [0, c].

Fused block sampling: distributions whose draws are an elementwise transform
of standard uniforms (``fusable = True``) additionally expose
``from_uniform(u)`` - the inverse-CDF map - plus a vectorized
``block_transformer`` used by the multi-group fast path
(:class:`repro.data.population._VirtualBlockKernel`): one
``rng.random((groups, count))`` call feeds every group of the family, with
the per-group parameter broadcast handled inside a single numpy expression
instead of one RNG call per group.  Rejection-sampled distributions
(:class:`TruncatedNormal`, and any :class:`Mixture` containing one) are not
fusable and keep their per-group streams.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = [
    "Distribution",
    "PointMass",
    "UniformValues",
    "TwoPoint",
    "TruncatedNormal",
    "Mixture",
]


def _phi(x: float) -> float:
    """Standard normal pdf."""
    return math.exp(-0.5 * x * x) / math.sqrt(2.0 * math.pi)


def _big_phi(x: float) -> float:
    """Standard normal cdf via erf."""
    return 0.5 * (1.0 + math.erf(x / math.sqrt(2.0)))


class Distribution:
    """Base class: a bounded distribution with an analytic mean."""

    lo: float
    hi: float

    @property
    def mean(self) -> float:
        raise NotImplementedError

    @property
    def variance(self) -> float:
        raise NotImplementedError

    @property
    def fusable(self) -> bool:
        """True iff draws are an elementwise transform of standard uniforms.

        Fusable distributions support :meth:`from_uniform` and can share one
        RNG call across many groups in the block-sampling fast path.
        """
        return False

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Draw ``n`` i.i.d. values as a float64 array."""
        raise NotImplementedError

    def from_uniform(self, u: np.ndarray) -> np.ndarray:
        """Inverse-CDF transform of uniforms in [0, 1) to values (fusable only)."""
        raise NotImplementedError(f"{type(self).__name__} is not uniform-fusable")

    @classmethod
    def block_transformer(cls, dists: Sequence["Distribution"]):
        """Build ``f(u, idx)`` mapping a uniform matrix to values row-by-row.

        ``u`` has shape (m, count); row ``j`` belongs to ``dists[idx[j]]``.
        Subclasses with purely parametric transforms override this to hoist
        the per-distribution parameters into vectors once, so one numpy
        expression transforms the whole matrix.
        """

        def generic(u: np.ndarray, idx: np.ndarray) -> np.ndarray:
            out = np.empty_like(u)
            for row, j in enumerate(idx):
                out[row] = dists[int(j)].from_uniform(u[row])
            return out

        return generic

    def _validate_bounds(self) -> None:
        if not self.lo < self.hi:
            raise ValueError(f"need lo < hi, got [{self.lo}, {self.hi}]")


@dataclass(frozen=True)
class PointMass(Distribution):
    """All mass at a single value (useful in tests and degenerate groups)."""

    value: float

    @property
    def lo(self) -> float:  # type: ignore[override]
        return self.value

    @property
    def hi(self) -> float:  # type: ignore[override]
        return self.value

    @property
    def mean(self) -> float:
        return self.value

    @property
    def variance(self) -> float:
        return 0.0

    @property
    def fusable(self) -> bool:
        return True

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return np.full(n, self.value, dtype=np.float64)

    def from_uniform(self, u: np.ndarray) -> np.ndarray:
        return np.full(u.shape, self.value, dtype=np.float64)

    @classmethod
    def block_transformer(cls, dists: Sequence[Distribution]):
        values = np.array([d.value for d in dists], dtype=np.float64)

        def transform(u: np.ndarray, idx: np.ndarray) -> np.ndarray:
            return np.broadcast_to(values[idx][:, None], u.shape).copy()

        return transform


@dataclass(frozen=True)
class UniformValues(Distribution):
    """Uniform on [lo, hi]."""

    lo: float
    hi: float

    def __post_init__(self) -> None:
        self._validate_bounds()

    @property
    def mean(self) -> float:
        return 0.5 * (self.lo + self.hi)

    @property
    def variance(self) -> float:
        return (self.hi - self.lo) ** 2 / 12.0

    @property
    def fusable(self) -> bool:
        return True

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return rng.uniform(self.lo, self.hi, size=n)

    def from_uniform(self, u: np.ndarray) -> np.ndarray:
        return self.lo + u * (self.hi - self.lo)

    @classmethod
    def block_transformer(cls, dists: Sequence[Distribution]):
        lo = np.array([d.lo for d in dists], dtype=np.float64)
        span = np.array([d.hi - d.lo for d in dists], dtype=np.float64)

        def transform(u: np.ndarray, idx: np.ndarray) -> np.ndarray:
            return lo[idx][:, None] + u * span[idx][:, None]

        return transform


@dataclass(frozen=True)
class TwoPoint(Distribution):
    """Scaled Bernoulli: value ``hi`` with probability p, else ``lo``.

    This is the paper's "bernoulli" and "hard" group family with
    lo=0, hi=100: mean = 100*p, the highest-variance bounded distribution
    for a given mean.
    """

    p: float
    lo: float = 0.0
    hi: float = 100.0

    def __post_init__(self) -> None:
        self._validate_bounds()
        if not 0.0 <= self.p <= 1.0:
            raise ValueError(f"p must be in [0, 1], got {self.p}")

    @property
    def mean(self) -> float:
        return self.lo + self.p * (self.hi - self.lo)

    @property
    def variance(self) -> float:
        return self.p * (1.0 - self.p) * (self.hi - self.lo) ** 2

    @property
    def fusable(self) -> bool:
        return True

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return np.where(rng.random(n) < self.p, self.hi, self.lo).astype(np.float64)

    def from_uniform(self, u: np.ndarray) -> np.ndarray:
        return np.where(u < self.p, self.hi, self.lo).astype(np.float64)

    @classmethod
    def block_transformer(cls, dists: Sequence[Distribution]):
        p = np.array([d.p for d in dists], dtype=np.float64)
        lo = np.array([d.lo for d in dists], dtype=np.float64)
        hi = np.array([d.hi for d in dists], dtype=np.float64)

        def transform(u: np.ndarray, idx: np.ndarray) -> np.ndarray:
            return np.where(u < p[idx][:, None], hi[idx][:, None], lo[idx][:, None])

        return transform


@dataclass(frozen=True)
class TruncatedNormal(Distribution):
    """Normal(mu, sigma^2) truncated to [lo, hi] (paper's "truncnorm").

    The analytic mean uses the standard truncated-normal formula
    mu + sigma * (phi(alpha) - phi(beta)) / (Phi(beta) - Phi(alpha)).
    Sampling is vectorized rejection from the parent normal, which is
    efficient whenever the untruncated mean lies inside (or near) the
    truncation interval - true for every workload in the paper.
    """

    mu: float
    sigma: float
    lo: float = 0.0
    hi: float = 100.0

    def __post_init__(self) -> None:
        self._validate_bounds()
        if self.sigma <= 0:
            raise ValueError(f"sigma must be > 0, got {self.sigma}")

    def _alpha_beta(self) -> tuple[float, float]:
        return (self.lo - self.mu) / self.sigma, (self.hi - self.mu) / self.sigma

    def _mass(self) -> float:
        alpha, beta = self._alpha_beta()
        z = _big_phi(beta) - _big_phi(alpha)
        if z <= 0.0:
            raise ValueError(
                f"truncation interval [{self.lo}, {self.hi}] carries no mass for "
                f"N({self.mu}, {self.sigma}^2)"
            )
        return z

    @property
    def mean(self) -> float:
        alpha, beta = self._alpha_beta()
        z = self._mass()
        return self.mu + self.sigma * (_phi(alpha) - _phi(beta)) / z

    @property
    def variance(self) -> float:
        alpha, beta = self._alpha_beta()
        z = self._mass()
        a_term = alpha * _phi(alpha) - beta * _phi(beta)
        b_term = (_phi(alpha) - _phi(beta)) / z
        return self.sigma**2 * (1.0 + a_term / z - b_term**2)

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        out = np.empty(n, dtype=np.float64)
        filled = 0
        # Expected acceptance = truncation mass; draw with head-room.
        accept = max(self._mass(), 1e-3)
        while filled < n:
            want = n - filled
            draw = rng.normal(self.mu, self.sigma, size=int(want / accept) + 16)
            good = draw[(draw >= self.lo) & (draw <= self.hi)]
            take = min(good.shape[0], want)
            out[filled : filled + take] = good[:take]
            filled += take
        return out


class Mixture(Distribution):
    """Finite mixture of bounded distributions (paper's "mixture" family)."""

    def __init__(
        self,
        components: Sequence[Distribution],
        weights: Sequence[float] | None = None,
    ) -> None:
        if not components:
            raise ValueError("a mixture needs at least one component")
        self.components = list(components)
        n = len(self.components)
        if weights is None:
            self.weights = np.full(n, 1.0 / n)
        else:
            w = np.asarray(weights, dtype=np.float64)
            if w.shape != (n,) or np.any(w < 0):
                raise ValueError("weights must be nonnegative, one per component")
            total = w.sum()
            if total <= 0:
                raise ValueError("weights must not all be zero")
            self.weights = w / total
        self.lo = min(comp.lo for comp in self.components)
        self.hi = max(comp.hi for comp in self.components)

    @property
    def mean(self) -> float:
        return float(sum(w * comp.mean for w, comp in zip(self.weights, self.components)))

    @property
    def variance(self) -> float:
        m = self.mean
        second = sum(
            w * (comp.variance + comp.mean**2)
            for w, comp in zip(self.weights, self.components)
        )
        return float(second - m * m)

    @property
    def fusable(self) -> bool:
        return all(comp.fusable for comp in self.components)

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        choice = rng.choice(len(self.components), size=n, p=self.weights)
        out = np.empty(n, dtype=np.float64)
        for idx, comp in enumerate(self.components):
            mask = choice == idx
            cnt = int(mask.sum())
            if cnt:
                out[mask] = comp.sample(rng, cnt)
        return out

    def from_uniform(self, u: np.ndarray) -> np.ndarray:
        """Inverse-CDF composition: the uniform picks the component via the
        weight partition of [0, 1) and is rescaled for the component's own
        inverse CDF - a single uniform per value, like :meth:`sample`."""
        if not self.fusable:
            raise NotImplementedError("mixture has a non-fusable component")
        cum = np.concatenate([[0.0], np.cumsum(self.weights)])
        cum[-1] = 1.0  # guard against round-off excluding u close to 1
        out = np.empty_like(u)
        for j, comp in enumerate(self.components):
            mask = (u >= cum[j]) & (u < cum[j + 1])
            if mask.any():
                width = cum[j + 1] - cum[j]
                out[mask] = comp.from_uniform((u[mask] - cum[j]) / width)
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Mixture({len(self.components)} components, mean={self.mean:.4g})"
