"""Synthetic flight-records dataset (the paper's Section 5.3 workload).

The paper uses the public US flight-records dump (1987-2008; ~120M rows) and
scales it to 1.2B and 12B rows "using probability density estimation".  The
raw files are not available offline, so we synthesize the population the same
way the paper scales it: per-carrier generating distributions whose means,
spreads and relative sizes mimic the real data's structure, then treat those
densities as the population at any requested row count (DESIGN.md section 4).

What matters for the Table 3 experiment is preserved by construction:

* several carrier pairs have nearly identical means (the "highly conflicting
  groups" the paper blames for the runtime growth) - e.g. the legacy
  carriers' arrival delays sit within a minute of each other;
* carrier sizes are heavily skewed (WN/DL/AA vs HA/AQ);
* three attributes with different separations: Elapsed Time (easy, means far
  apart), Arrival Delay and Departure Delay (hard, clustered means).

Carrier codes are the ones appearing in the real 1987-2008 data.
"""

from __future__ import annotations

import numpy as np

from repro._util import as_rng
from repro.data.distributions import Mixture, TruncatedNormal
from repro.data.population import Population, VirtualGroup
from repro.needletail.table import Table

__all__ = [
    "CARRIERS",
    "FLIGHT_ATTRIBUTES",
    "make_flights_population",
    "make_flights_table",
]

# (carrier, relative traffic share) - loosely the real 1987-2008 ordering.
CARRIERS: list[tuple[str, float]] = [
    ("WN", 0.14),  # Southwest
    ("DL", 0.12),  # Delta
    ("AA", 0.11),  # American
    ("UA", 0.10),  # United
    ("US", 0.09),  # US Airways
    ("NW", 0.08),  # Northwest
    ("CO", 0.07),  # Continental
    ("TW", 0.05),  # TWA
    ("HP", 0.04),  # America West
    ("AS", 0.04),  # Alaska
    ("MQ", 0.04),  # American Eagle
    ("OO", 0.03),  # SkyWest
    ("XE", 0.03),  # ExpressJet
    ("EV", 0.02),  # Atlantic Southeast
    ("B6", 0.02),  # JetBlue
    ("FL", 0.01),  # AirTran
    ("F9", 0.005),  # Frontier
    ("HA", 0.003),  # Hawaiian
    ("AQ", 0.002),  # Aloha
]

# Per-attribute carrier mean tables.  Values are minutes.  Arrival/departure
# delays include deliberately conflicting clusters (pairs < 1 minute apart).
_ELAPSED_MEANS = {
    "WN": 95.0, "DL": 128.0, "AA": 142.0, "UA": 151.0, "US": 117.0,
    "NW": 134.0, "CO": 139.0, "TW": 125.0, "HP": 122.0, "AS": 131.0,
    "MQ": 78.0, "OO": 74.0, "XE": 88.0, "EV": 83.0, "B6": 158.0,
    "FL": 108.0, "F9": 137.0, "HA": 61.0, "AQ": 52.0,
}
_ARRIVAL_MEANS = {
    "WN": 4.8, "DL": 7.2, "AA": 7.6, "UA": 8.9, "US": 7.0,
    "NW": 6.3, "CO": 8.6, "TW": 7.5, "HP": 8.2, "AS": 8.4,
    "MQ": 9.8, "OO": 7.9, "XE": 10.3, "EV": 11.6, "B6": 10.1,
    "FL": 6.8, "F9": 6.6, "HA": 2.1, "AQ": 1.4,
}
_DEPARTURE_MEANS = {
    "WN": 7.9, "DL": 8.4, "AA": 9.1, "UA": 10.6, "US": 8.1,
    "NW": 7.4, "CO": 9.9, "TW": 8.6, "HP": 9.4, "AS": 9.2,
    "MQ": 10.4, "OO": 9.0, "XE": 11.8, "EV": 12.9, "B6": 11.3,
    "FL": 8.0, "F9": 7.7, "HA": 3.2, "AQ": 2.4,
}

# attribute -> (per-carrier means, value bound c, within-carrier spread)
FLIGHT_ATTRIBUTES: dict[str, tuple[dict[str, float], float, float]] = {
    "elapsed_time": (_ELAPSED_MEANS, 480.0, 28.0),
    "arrival_delay": (_ARRIVAL_MEANS, 120.0, 14.0),
    "departure_delay": (_DEPARTURE_MEANS, 120.0, 12.0),
}


def _carrier_distribution(
    mean: float, spread: float, c: float, rng: np.random.Generator
) -> Mixture:
    """A carrier's per-flight distribution: short-haul/long-haul style mixture.

    Two truncated-normal components around the carrier mean (a bulk component
    and a heavier "bad day" tail), weighted so the analytic mixture mean stays
    exactly at ``mean``-ish but is recomputed analytically regardless.
    """
    bulk = TruncatedNormal(mean * 0.9, spread * 0.6, 0.0, c)
    tail = TruncatedNormal(min(mean * 1.8 + 2.0, c * 0.9), spread * 1.6, 0.0, c)
    weight = 0.85 + 0.05 * rng.random()
    return Mixture([bulk, tail], [weight, 1.0 - weight])


def make_flights_population(
    attribute: str = "arrival_delay",
    total_rows: int = 120_000_000,
    seed: int | None = 0,
) -> Population:
    """Virtual flight population for one attribute, grouped by carrier.

    Args:
        attribute: one of ``elapsed_time``, ``arrival_delay``,
            ``departure_delay``.
        total_rows: population size; 120M matches the real dump, 1.2B/12B the
            paper's density-estimation scale-ups (group distributions are
            unchanged - only the nominal sizes scale, exactly like the
            paper's procedure).
        seed: controls the mixture-shape jitter.
    """
    if attribute not in FLIGHT_ATTRIBUTES:
        raise KeyError(
            f"unknown attribute {attribute!r}; pick from {sorted(FLIGHT_ATTRIBUTES)}"
        )
    means, c, spread = FLIGHT_ATTRIBUTES[attribute]
    rng = as_rng(seed)
    share_total = sum(share for _, share in CARRIERS)
    groups = []
    for code, share in CARRIERS:
        size = max(int(total_rows * share / share_total), 1)
        dist = _carrier_distribution(means[code], spread, c, rng)
        groups.append(VirtualGroup(code, dist, size))
    return Population(groups=groups, c=c, name=f"flights-{attribute}({total_rows})")


def make_flights_table(
    num_rows: int = 100_000,
    seed: int | None = 0,
) -> Table:
    """A materialized flights table for the query-layer examples and tests.

    Columns: carrier (group-by), elapsed_time, arrival_delay,
    departure_delay, distance, year.
    """
    rng = as_rng(seed)
    share = np.array([s for _, s in CARRIERS])
    share = share / share.sum()
    codes = [c for c, _ in CARRIERS]
    carrier_ids = rng.choice(len(codes), size=num_rows, p=share)
    carriers = np.array(codes, dtype="U2")[carrier_ids]

    columns: dict[str, np.ndarray] = {"carrier": carriers}
    for attribute, (means, c, spread) in FLIGHT_ATTRIBUTES.items():
        mu = np.array([means[code] for code in codes])[carrier_ids]
        vals = rng.normal(mu, spread * 0.7)
        columns[attribute] = np.clip(vals, 0.0, c)
    columns["distance"] = rng.gamma(2.0, 350.0, num_rows).clip(60, 4500)
    columns["year"] = rng.integers(1987, 2009, num_rows)
    return Table.from_dict("flights", columns)
