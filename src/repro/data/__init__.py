"""Dataset construction: distributions, populations, synthetic workloads."""

from repro.data.distributions import (
    Distribution,
    Mixture,
    PointMass,
    TruncatedNormal,
    TwoPoint,
    UniformValues,
)
from repro.data.population import (
    Group,
    GroupSampler,
    MaterializedGroup,
    Population,
    VirtualGroup,
)

__all__ = [
    "Distribution",
    "Mixture",
    "PointMass",
    "TruncatedNormal",
    "TwoPoint",
    "UniformValues",
    "Group",
    "GroupSampler",
    "MaterializedGroup",
    "Population",
    "VirtualGroup",
]
