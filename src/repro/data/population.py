"""Group and population abstractions.

A *population* is the full dataset the analyst's query runs over: k groups
(one per distinct value of the group-by attribute X), each a multiset S_i of
n_i values of the aggregated attribute Y, all within [0, c].

Two group representations:

* :class:`MaterializedGroup` - the n_i values exist as a numpy array.  This is
  the faithful representation; sampling without replacement is a true random
  permutation of the array, and the group's true mean is the empirical mean of
  the array.  Used for populations up to ~1e7 values.
* :class:`VirtualGroup` - the group is *defined* by a generating distribution
  and a nominal size n_i; draws come from the distribution.  This is the
  documented substitution for the paper's 1e8-1e10-row on-disk tables (see
  DESIGN.md section 4): for m << n_i, with/without-replacement draws are
  statistically indistinguishable, and a group that is sampled to exhaustion
  (m = n_i) is finalized at its analytic mean, exactly as a full scan of the
  group would be.

Both kinds expose a per-run :class:`GroupSampler` so repeated algorithm runs
over one population draw independent samples.

Fused block sampling
--------------------

Batched executors ask the engine for a whole ``(count, k_active)`` matrix at
once (:meth:`repro.engines.base.EngineRun.draw_block`).  To serve that without
one Python call per group, sampler classes may provide a *block kernel* via
:meth:`GroupSampler.make_block_kernel`:

* :class:`_ColumnarPermutations` - materialized without-replacement groups
  store their per-run permutations in one contiguous ``perm_flat`` array
  (lazily materialized per group from the group's own stream), so a batch is
  a single fancy-index gather across all active groups.  Bit-exact with the
  sequential per-group path: the permutation of each group is produced by
  exactly the same ``rng.permutation`` call.
* :class:`_VirtualBlockKernel` - virtual groups whose distribution is
  ``fusable`` (an elementwise inverse-CDF transform of uniforms) share one
  stream: ``rng.random((groups, count))`` plus one vectorized transform per
  distribution family.  Row ``j`` of the uniform matrix is exactly what the
  ``j``-th sequential single-group draw would have consumed, so fused and
  sequential draws are bit-identical.  Non-fusable distributions (rejection
  samplers) keep their per-group streams and per-group draws.

Materialized *with*-replacement samplers intentionally have no fused kernel:
their draws must consume each group's own stream to stay bit-exact with the
reference executor, so they use the engine's generic per-column fallback.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.data.distributions import Distribution

__all__ = [
    "GroupSampler",
    "Group",
    "MaterializedGroup",
    "VirtualGroup",
    "Population",
    "BlockKernel",
]


class GroupSampler:
    """A per-run sampling stream for one group.

    ``draw(count)`` returns the next ``count`` samples of the stream.  For
    without-replacement materialized groups the stream is a fixed uniform
    random permutation of the group's values, so "the first m draws" is
    exactly "a uniform m-subset in random order" - and pre-drawing samples
    that a batched executor later discards does not disturb the semantics.
    """

    def __init__(self, size: int) -> None:
        self._size = int(size)
        self._consumed = 0

    @property
    def size(self) -> int:
        return self._size

    @property
    def consumed(self) -> int:
        return self._consumed

    def draw(self, count: int) -> np.ndarray:
        raise NotImplementedError

    @classmethod
    def make_block_kernel(
        cls, samplers: list["GroupSampler"], gids: np.ndarray
    ) -> "BlockKernel | None":
        """Build a fused multi-group kernel for samplers of this class.

        ``None`` (the default) means the engine falls back to drawing the
        groups one column at a time through :meth:`draw`.
        """
        return None


class BlockKernel:
    """A fused drawing plan for a fixed set of same-kind group samplers.

    ``draw_into(out, cols, gids, count)`` fills ``out[:, cols]`` with the next
    ``count`` samples of each group in ``gids`` (parallel to ``cols``).
    Kernels own whatever shared per-run state the fusion needs; samplers they
    *bind* delegate their single-group ``draw`` to the same state so the
    per-group and fused paths can be interleaved freely.
    """

    def __init__(self, gids: np.ndarray) -> None:
        # Dense gid -> local-slot map; kernels are per-run and k-bounded.
        self._slot_of = np.full(int(gids.max()) + 1, -1, dtype=np.int64)
        self._slot_of[gids] = np.arange(gids.size)

    def slots(self, gids: np.ndarray) -> np.ndarray:
        return self._slot_of[gids]

    def draw_into(
        self, out: np.ndarray, cols: np.ndarray, gids: np.ndarray, count: int
    ) -> None:
        raise NotImplementedError

    def draw_matrix(self, gids: np.ndarray, count: int) -> np.ndarray:
        """Draw a fresh ``(count, len(gids))`` matrix for all of ``gids``.

        Used when one kernel covers the whole request; kernels whose fused
        draw already produces a fresh matrix override this to skip the copy
        into a preallocated output.
        """
        out = np.empty((count, gids.size), dtype=np.float64)
        self.draw_into(out, np.arange(gids.size, dtype=np.int64), gids, count)
        return out


class _ColumnarPermutations(BlockKernel):
    """Per-run columnar store of without-replacement permutations.

    One contiguous float64 buffer holds every group's permuted values at
    ``offsets[slot] : offsets[slot] + size[slot]``; a fused draw of ``count``
    rounds from m active groups is one fancy-index gather of shape
    ``(count, m)``.  Permutations are materialized lazily, each from its
    group's own independent stream, which keeps the values bit-identical to
    the sequential per-group sampler.
    """

    def __init__(self, samplers: list["_MaterializedWithoutReplacement"], gids: np.ndarray) -> None:
        super().__init__(gids)
        self._samplers = samplers
        self._sizes = np.array([s.size for s in samplers], dtype=np.int64)
        self._offsets = np.zeros(len(samplers) + 1, dtype=np.int64)
        np.cumsum(self._sizes, out=self._offsets[1:])
        self._perm_flat = np.empty(int(self._offsets[-1]), dtype=np.float64)
        self._filled = False
        self._ready = np.zeros(len(samplers), dtype=bool)
        self.consumed = np.zeros(len(samplers), dtype=np.int64)
        for slot, sampler in enumerate(samplers):
            sampler._bind(self, slot)

    def _ensure(self, slots: np.ndarray) -> None:
        missing = slots[~self._ready[slots]]
        if missing.size == 0:
            return
        if not self._filled:
            # One vectorized copy of the columnar values; the per-group
            # in-place shuffle below then consumes each group's stream
            # exactly like ``rng.permutation(values)`` (numpy's permutation
            # is copy-then-shuffle, asserted in the test suite).
            np.concatenate([s._values for s in self._samplers], out=self._perm_flat)
            self._filled = True
        for slot in missing:
            slot = int(slot)
            sampler = self._samplers[slot]
            lo = int(self._offsets[slot])
            sampler._rng.shuffle(self._perm_flat[lo : lo + sampler.size])
            self._ready[slot] = True

    def _check_capacity(self, slots: np.ndarray, count: int) -> None:
        over = self.consumed[slots] + count > self._sizes[slots]
        if np.any(over):
            slot = int(slots[np.argmax(over)])
            raise ValueError(
                f"group exhausted: requested {count} more samples after "
                f"{int(self.consumed[slot])} of {int(self._sizes[slot])}"
            )

    def draw_one(self, slot: int, count: int) -> np.ndarray:
        """Sequential single-group draw (read-only view of the permutation)."""
        slots = np.array([slot], dtype=np.int64)
        self._ensure(slots)
        self._check_capacity(slots, count)
        start = int(self._offsets[slot] + self.consumed[slot])
        out = self._perm_flat[start : start + count].view()
        out.flags.writeable = False
        self.consumed[slot] += count
        return out

    def _gather(self, slots: np.ndarray, count: int) -> np.ndarray:
        self._ensure(slots)
        self._check_capacity(slots, count)
        starts = self._offsets[slots] + self.consumed[slots]
        # One gather for the whole batch across all active groups.
        block = self._perm_flat[
            starts[None, :] + np.arange(count, dtype=np.int64)[:, None]
        ]
        self.consumed[slots] += count
        return block

    def draw_into(
        self, out: np.ndarray, cols: np.ndarray, gids: np.ndarray, count: int
    ) -> None:
        out[:, cols] = self._gather(self.slots(gids), count)

    def draw_matrix(self, gids: np.ndarray, count: int) -> np.ndarray:
        return self._gather(self.slots(gids), count)


class _VirtualBlockKernel(BlockKernel):
    """Family-batched sampling for distribution-backed groups.

    All fusable groups share one uniform stream (the stream of the first
    fusable group): a fused draw of ``count`` samples from m groups consumes
    ``rng.random((m, count))`` - row ``j`` is exactly the chunk the ``j``-th
    sequential single-group draw would consume, so fused and sequential draws
    are bit-identical.  Each distribution family transforms its rows with one
    vectorized inverse-CDF expression.  Non-fusable samplers (rejection-based
    distributions) keep their own streams and per-group ``draw``.
    """

    def __init__(self, samplers: list["_VirtualSampler"], gids: np.ndarray) -> None:
        super().__init__(gids)
        self._samplers = samplers
        self._fused = np.array([s._dist.fusable for s in samplers], dtype=bool)
        self.consumed = np.zeros(len(samplers), dtype=np.int64)
        fused_slots = np.flatnonzero(self._fused)
        self._rng = samplers[int(fused_slots[0])]._rng if fused_slots.size else None
        # family type -> (transformer, family-local index per slot)
        self._family_of = np.full(len(samplers), -1, dtype=np.int64)
        self._fam_index = np.zeros(len(samplers), dtype=np.int64)
        self._transformers: list = []
        by_type: dict[type, list[int]] = {}
        for slot in fused_slots:
            by_type.setdefault(type(samplers[int(slot)]._dist), []).append(int(slot))
        for dist_cls, slots in by_type.items():
            fam = len(self._transformers)
            dists = [samplers[s]._dist for s in slots]
            self._transformers.append(dist_cls.block_transformer(dists))
            for j, s in enumerate(slots):
                self._family_of[s] = fam
                self._fam_index[s] = j
        for slot in fused_slots:
            samplers[int(slot)]._bind(self, int(slot))

    def draw_one(self, slot: int, count: int) -> np.ndarray:
        """Sequential draw for one bound (fusable) group."""
        u = self._rng.random((1, count))
        fam = int(self._family_of[slot])
        idx = self._fam_index[slot : slot + 1]
        self.consumed[slot] += count
        return self._transformers[fam](u, idx)[0]

    def draw_into(
        self, out: np.ndarray, cols: np.ndarray, gids: np.ndarray, count: int
    ) -> None:
        slots = self.slots(gids)
        fused = self._fused[slots]
        if fused.any():
            fslots = slots[fused]
            fcols = cols[fused]
            # One RNG call serves every fusable group in this batch; rows are
            # handed to each family's vectorized transform.
            u = self._rng.random((fslots.size, count))
            fams = self._family_of[fslots]
            for fam in np.unique(fams):
                rows = np.flatnonzero(fams == fam)
                vals = self._transformers[int(fam)](
                    u[rows], self._fam_index[fslots[rows]]
                )
                out[:, fcols[rows]] = vals.T
            self.consumed[fslots] += count
        if not fused.all():
            for slot, col in zip(slots[~fused], cols[~fused]):
                out[:, col] = self._samplers[int(slot)].draw(count)


class _MaterializedWithReplacement(GroupSampler):
    def __init__(self, values: np.ndarray, rng: np.random.Generator) -> None:
        super().__init__(values.shape[0])
        self._values = values
        self._rng = rng

    def draw(self, count: int) -> np.ndarray:
        idx = self._rng.integers(0, self._values.shape[0], size=count)
        self._consumed += count
        return self._values[idx]


class _MaterializedWithoutReplacement(GroupSampler):
    """Without-replacement stream: a lazily materialized random permutation.

    Standalone (unbound) samplers keep a private permutation; samplers bound
    to a :class:`_ColumnarPermutations` kernel delegate to its shared
    columnar buffer so sequential and fused draws advance the same state.
    ``draw`` returns a *read-only* view - a caller mutating the returned
    block would otherwise silently corrupt every later draw of the run.
    """

    def __init__(self, values: np.ndarray, rng: np.random.Generator) -> None:
        super().__init__(values.shape[0])
        self._values = values
        self._rng = rng
        self._perm: np.ndarray | None = None
        self._store: _ColumnarPermutations | None = None
        self._slot = -1

    def _bind(self, store: _ColumnarPermutations, slot: int) -> None:
        self._store = store
        self._slot = slot

    @property
    def consumed(self) -> int:
        if self._store is not None:
            return int(self._store.consumed[self._slot])
        return self._consumed

    def draw(self, count: int) -> np.ndarray:
        if self._store is not None:
            return self._store.draw_one(self._slot, count)
        if self._perm is None:
            self._perm = self._rng.permutation(self._values)
        end = self._consumed + count
        if end > self._perm.shape[0]:
            raise ValueError(
                f"group exhausted: requested {count} more samples after "
                f"{self._consumed} of {self._perm.shape[0]}"
            )
        out = self._perm[self._consumed : end].view()
        out.flags.writeable = False
        self._consumed = end
        return out

    @classmethod
    def make_block_kernel(
        cls, samplers: list[GroupSampler], gids: np.ndarray
    ) -> BlockKernel | None:
        return _ColumnarPermutations(samplers, gids)  # type: ignore[arg-type]


class _VirtualSampler(GroupSampler):
    def __init__(self, dist: Distribution, size: int, rng: np.random.Generator) -> None:
        super().__init__(size)
        self._dist = dist
        self._rng = rng
        self._store: _VirtualBlockKernel | None = None
        self._slot = -1

    def _bind(self, store: _VirtualBlockKernel, slot: int) -> None:
        self._store = store
        self._slot = slot

    @property
    def consumed(self) -> int:
        if self._store is not None:
            return int(self._store.consumed[self._slot])
        return self._consumed

    def draw(self, count: int) -> np.ndarray:
        if self._store is not None:
            return self._store.draw_one(self._slot, count)
        self._consumed += count
        return self._dist.sample(self._rng, count)

    @classmethod
    def make_block_kernel(
        cls, samplers: list[GroupSampler], gids: np.ndarray
    ) -> BlockKernel | None:
        return _VirtualBlockKernel(samplers, gids)  # type: ignore[arg-type]


class Group:
    """Abstract group S_i: a named multiset of n_i bounded values."""

    name: str

    @property
    def size(self) -> int:
        raise NotImplementedError

    @property
    def true_mean(self) -> float:
        """The population average mu_i (ground truth for evaluation)."""
        raise NotImplementedError

    def sampler(self, rng: np.random.Generator, without_replacement: bool) -> GroupSampler:
        """Open a fresh sampling stream over this group."""
        raise NotImplementedError


class MaterializedGroup(Group):
    """A group whose values are held in memory as a numpy array."""

    def __init__(self, name: str, values: np.ndarray) -> None:
        values = np.asarray(values, dtype=np.float64)
        if values.ndim != 1 or values.shape[0] == 0:
            raise ValueError(f"group {name!r} needs a non-empty 1-D value array")
        self.name = str(name)
        self.values = values
        self._mean = float(values.mean())

    @property
    def size(self) -> int:
        return int(self.values.shape[0])

    @property
    def true_mean(self) -> float:
        return self._mean

    def sampler(self, rng: np.random.Generator, without_replacement: bool) -> GroupSampler:
        if without_replacement:
            return _MaterializedWithoutReplacement(self.values, rng)
        return _MaterializedWithReplacement(self.values, rng)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MaterializedGroup({self.name!r}, n={self.size}, mean={self._mean:.4g})"


class VirtualGroup(Group):
    """A distribution-backed group with a nominal size.

    Draws are with replacement from the generating distribution regardless of
    the requested mode; the nominal size still drives the finite-population
    epsilon and the exhaustion rule.  See DESIGN.md section 4 for why this
    substitution preserves the paper's behaviour.
    """

    def __init__(self, name: str, dist: Distribution, size: int) -> None:
        if size <= 0:
            raise ValueError(f"group {name!r} needs size >= 1, got {size}")
        self.name = str(name)
        self.dist = dist
        self._size = int(size)

    @property
    def size(self) -> int:
        return self._size

    @property
    def true_mean(self) -> float:
        return self.dist.mean

    def sampler(self, rng: np.random.Generator, without_replacement: bool) -> GroupSampler:
        return _VirtualSampler(self.dist, self._size, rng)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"VirtualGroup({self.name!r}, n={self._size}, mean={self.true_mean:.4g})"


@dataclass
class Population:
    """A named collection of groups plus the value bound c.

    This is the dataset object every engine wraps.  ``c`` is the upper bound
    of the value domain [0, c] that the confidence intervals scale with
    (paper Section 2.1: e.g. flight delays bounded by 24 hours).
    """

    groups: list[Group]
    c: float
    name: str = "population"

    def __post_init__(self) -> None:
        if not self.groups:
            raise ValueError("a population needs at least one group")
        if self.c <= 0:
            raise ValueError(f"value bound c must be > 0, got {self.c}")
        names = [g.name for g in self.groups]
        if len(set(names)) != len(names):
            raise ValueError("group names must be unique")

    @property
    def k(self) -> int:
        return len(self.groups)

    @property
    def group_names(self) -> list[str]:
        return [g.name for g in self.groups]

    def sizes(self) -> np.ndarray:
        return np.array([g.size for g in self.groups], dtype=np.int64)

    @property
    def total_size(self) -> int:
        return int(self.sizes().sum())

    def true_means(self) -> np.ndarray:
        return np.array([g.true_mean for g in self.groups], dtype=np.float64)

    def eta(self) -> np.ndarray:
        """Minimal distances eta_i = min_{j != i} |mu_i - mu_j| (Table 2)."""
        mu = self.true_means()
        if self.k == 1:
            return np.array([np.inf])
        dist = np.abs(mu[:, None] - mu[None, :])
        np.fill_diagonal(dist, np.inf)
        return dist.min(axis=1)

    def difficulty(self) -> float:
        """The paper's difficulty proxy c^2 / eta^2 with eta = min_i eta_i."""
        eta = float(self.eta().min())
        if eta == 0.0:
            return float("inf")
        return (self.c / eta) ** 2

    @classmethod
    def from_arrays(
        cls, names: Sequence[str], arrays: Sequence[np.ndarray], c: float, name: str = "population"
    ) -> "Population":
        """Build a fully materialized population from parallel name/array lists."""
        if len(names) != len(arrays):
            raise ValueError("names and arrays must have the same length")
        groups: list[Group] = [MaterializedGroup(n, a) for n, a in zip(names, arrays)]
        return cls(groups=groups, c=c, name=name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Population({self.name!r}, k={self.k}, N={self.total_size}, c={self.c})"
