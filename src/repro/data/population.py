"""Group and population abstractions.

A *population* is the full dataset the analyst's query runs over: k groups
(one per distinct value of the group-by attribute X), each a multiset S_i of
n_i values of the aggregated attribute Y, all within [0, c].

Two group representations:

* :class:`MaterializedGroup` - the n_i values exist as a numpy array.  This is
  the faithful representation; sampling without replacement is a true random
  permutation of the array, and the group's true mean is the empirical mean of
  the array.  Used for populations up to ~1e7 values.
* :class:`VirtualGroup` - the group is *defined* by a generating distribution
  and a nominal size n_i; draws come from the distribution.  This is the
  documented substitution for the paper's 1e8-1e10-row on-disk tables (see
  DESIGN.md section 4): for m << n_i, with/without-replacement draws are
  statistically indistinguishable, and a group that is sampled to exhaustion
  (m = n_i) is finalized at its analytic mean, exactly as a full scan of the
  group would be.

Both kinds expose a per-run :class:`GroupSampler` so repeated algorithm runs
over one population draw independent samples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.data.distributions import Distribution

__all__ = [
    "GroupSampler",
    "Group",
    "MaterializedGroup",
    "VirtualGroup",
    "Population",
]


class GroupSampler:
    """A per-run sampling stream for one group.

    ``draw(count)`` returns the next ``count`` samples of the stream.  For
    without-replacement materialized groups the stream is a fixed uniform
    random permutation of the group's values, so "the first m draws" is
    exactly "a uniform m-subset in random order" - and pre-drawing samples
    that a batched executor later discards does not disturb the semantics.
    """

    def __init__(self, size: int) -> None:
        self._size = int(size)
        self._consumed = 0

    @property
    def size(self) -> int:
        return self._size

    @property
    def consumed(self) -> int:
        return self._consumed

    def draw(self, count: int) -> np.ndarray:
        raise NotImplementedError


class _MaterializedWithReplacement(GroupSampler):
    def __init__(self, values: np.ndarray, rng: np.random.Generator) -> None:
        super().__init__(values.shape[0])
        self._values = values
        self._rng = rng

    def draw(self, count: int) -> np.ndarray:
        idx = self._rng.integers(0, self._values.shape[0], size=count)
        self._consumed += count
        return self._values[idx]


class _MaterializedWithoutReplacement(GroupSampler):
    def __init__(self, values: np.ndarray, rng: np.random.Generator) -> None:
        super().__init__(values.shape[0])
        self._perm = rng.permutation(values)

    def draw(self, count: int) -> np.ndarray:
        end = self._consumed + count
        if end > self._perm.shape[0]:
            raise ValueError(
                f"group exhausted: requested {count} more samples after "
                f"{self._consumed} of {self._perm.shape[0]}"
            )
        out = self._perm[self._consumed : end]
        self._consumed = end
        return out


class _VirtualSampler(GroupSampler):
    def __init__(self, dist: Distribution, size: int, rng: np.random.Generator) -> None:
        super().__init__(size)
        self._dist = dist
        self._rng = rng

    def draw(self, count: int) -> np.ndarray:
        self._consumed += count
        return self._dist.sample(self._rng, count)


class Group:
    """Abstract group S_i: a named multiset of n_i bounded values."""

    name: str

    @property
    def size(self) -> int:
        raise NotImplementedError

    @property
    def true_mean(self) -> float:
        """The population average mu_i (ground truth for evaluation)."""
        raise NotImplementedError

    def sampler(self, rng: np.random.Generator, without_replacement: bool) -> GroupSampler:
        """Open a fresh sampling stream over this group."""
        raise NotImplementedError


class MaterializedGroup(Group):
    """A group whose values are held in memory as a numpy array."""

    def __init__(self, name: str, values: np.ndarray) -> None:
        values = np.asarray(values, dtype=np.float64)
        if values.ndim != 1 or values.shape[0] == 0:
            raise ValueError(f"group {name!r} needs a non-empty 1-D value array")
        self.name = str(name)
        self.values = values
        self._mean = float(values.mean())

    @property
    def size(self) -> int:
        return int(self.values.shape[0])

    @property
    def true_mean(self) -> float:
        return self._mean

    def sampler(self, rng: np.random.Generator, without_replacement: bool) -> GroupSampler:
        if without_replacement:
            return _MaterializedWithoutReplacement(self.values, rng)
        return _MaterializedWithReplacement(self.values, rng)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MaterializedGroup({self.name!r}, n={self.size}, mean={self._mean:.4g})"


class VirtualGroup(Group):
    """A distribution-backed group with a nominal size.

    Draws are with replacement from the generating distribution regardless of
    the requested mode; the nominal size still drives the finite-population
    epsilon and the exhaustion rule.  See DESIGN.md section 4 for why this
    substitution preserves the paper's behaviour.
    """

    def __init__(self, name: str, dist: Distribution, size: int) -> None:
        if size <= 0:
            raise ValueError(f"group {name!r} needs size >= 1, got {size}")
        self.name = str(name)
        self.dist = dist
        self._size = int(size)

    @property
    def size(self) -> int:
        return self._size

    @property
    def true_mean(self) -> float:
        return self.dist.mean

    def sampler(self, rng: np.random.Generator, without_replacement: bool) -> GroupSampler:
        return _VirtualSampler(self.dist, self._size, rng)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"VirtualGroup({self.name!r}, n={self._size}, mean={self.true_mean:.4g})"


@dataclass
class Population:
    """A named collection of groups plus the value bound c.

    This is the dataset object every engine wraps.  ``c`` is the upper bound
    of the value domain [0, c] that the confidence intervals scale with
    (paper Section 2.1: e.g. flight delays bounded by 24 hours).
    """

    groups: list[Group]
    c: float
    name: str = "population"

    def __post_init__(self) -> None:
        if not self.groups:
            raise ValueError("a population needs at least one group")
        if self.c <= 0:
            raise ValueError(f"value bound c must be > 0, got {self.c}")
        names = [g.name for g in self.groups]
        if len(set(names)) != len(names):
            raise ValueError("group names must be unique")

    @property
    def k(self) -> int:
        return len(self.groups)

    @property
    def group_names(self) -> list[str]:
        return [g.name for g in self.groups]

    def sizes(self) -> np.ndarray:
        return np.array([g.size for g in self.groups], dtype=np.int64)

    @property
    def total_size(self) -> int:
        return int(self.sizes().sum())

    def true_means(self) -> np.ndarray:
        return np.array([g.true_mean for g in self.groups], dtype=np.float64)

    def eta(self) -> np.ndarray:
        """Minimal distances eta_i = min_{j != i} |mu_i - mu_j| (Table 2)."""
        mu = self.true_means()
        if self.k == 1:
            return np.array([np.inf])
        dist = np.abs(mu[:, None] - mu[None, :])
        np.fill_diagonal(dist, np.inf)
        return dist.min(axis=1)

    def difficulty(self) -> float:
        """The paper's difficulty proxy c^2 / eta^2 with eta = min_i eta_i."""
        eta = float(self.eta().min())
        if eta == 0.0:
            return float("inf")
        return (self.c / eta) ** 2

    @classmethod
    def from_arrays(
        cls, names: Sequence[str], arrays: Sequence[np.ndarray], c: float, name: str = "population"
    ) -> "Population":
        """Build a fully materialized population from parallel name/array lists."""
        if len(names) != len(arrays):
            raise ValueError("names and arrays must have the same length")
        groups: list[Group] = [MaterializedGroup(n, a) for n, a in zip(names, arrays)]
        return cls(groups=groups, c=c, name=name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Population({self.name!r}, k={self.k}, N={self.total_size}, c={self.c})"
