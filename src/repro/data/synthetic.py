"""Synthetic workload generators matching the paper's Section 5.2.

Four dataset families, with the exact parameter choices the paper describes:

* ``truncnorm`` - per group: mean ~ U[0, 100], variance from {4, 25, 64, 100}
  (std 2/5/8/10), values from the normal truncated to [0, 100];
* ``mixture`` - per group: 1-5 truncated-normal components, each with mean
  ~ U[0, 100] and variance ~ U[1, 10];
* ``bernoulli`` - per group: mean ~ U[0, 100], values in {0, 100} with the
  matching bias (the highest-variance bounded distribution);
* ``hard(gamma)`` - group i's mean is fixed at 40 + gamma*i with two-point
  values, so eta = gamma is controlled exactly (used in Fig. 5(b)).

Defaults follow the paper: k = 10 groups, 10M records total split equally,
values in [0, 100].  Datasets are *virtual* by default (distribution-backed
groups with analytic means - see DESIGN.md section 4); pass
``materialize=True`` to draw the values into memory for small populations.
"""

from __future__ import annotations

import numpy as np

from repro._util import as_rng
from repro.data.distributions import Distribution, Mixture, TruncatedNormal, TwoPoint
from repro.data.population import Group, MaterializedGroup, Population, VirtualGroup

__all__ = [
    "make_truncnorm_dataset",
    "make_mixture_dataset",
    "make_bernoulli_dataset",
    "make_hard_dataset",
    "make_skewed_mixture_dataset",
    "SYNTHETIC_FAMILIES",
    "DEFAULT_C",
    "DEFAULT_K",
    "DEFAULT_TOTAL_SIZE",
]

DEFAULT_C = 100.0
DEFAULT_K = 10
DEFAULT_TOTAL_SIZE = 10_000_000

_TRUNCNORM_VARIANCES = (4.0, 25.0, 64.0, 100.0)

_MATERIALIZE_LIMIT = 50_000_000


def _build_group(name: str, dist: Distribution, size: int, materialize: bool, rng) -> Group:
    if materialize:
        if size > _MATERIALIZE_LIMIT:
            raise ValueError(
                f"refusing to materialize {size} values for group {name!r}; "
                f"use a virtual population above {_MATERIALIZE_LIMIT}"
            )
        return MaterializedGroup(name, dist.sample(rng, size))
    return VirtualGroup(name, dist, size)


def _equal_sizes(total_size: int, k: int) -> list[int]:
    base = total_size // k
    sizes = [base] * k
    for i in range(total_size - base * k):
        sizes[i] += 1
    return sizes


def make_truncnorm_dataset(
    k: int = DEFAULT_K,
    total_size: int = DEFAULT_TOTAL_SIZE,
    c: float = DEFAULT_C,
    seed: int | None = None,
    std: float | None = None,
    materialize: bool = False,
) -> Population:
    """The paper's "Truncated Normals" family.

    Args:
        std: fix every group's standard deviation (the Fig. 7(b)/(c) sweep);
            ``None`` draws the variance per group from {4, 25, 64, 100}.
    """
    rng = as_rng(seed)
    sizes = _equal_sizes(total_size, k)
    groups = []
    for i in range(k):
        mu = rng.uniform(0.0, c)
        sigma = std if std is not None else float(np.sqrt(rng.choice(_TRUNCNORM_VARIANCES)))
        dist = TruncatedNormal(mu, sigma, 0.0, c)
        groups.append(_build_group(f"g{i}", dist, sizes[i], materialize, rng))
    return Population(groups=groups, c=c, name=f"truncnorm(k={k},N={total_size})")


def make_mixture_dataset(
    k: int = DEFAULT_K,
    total_size: int = DEFAULT_TOTAL_SIZE,
    c: float = DEFAULT_C,
    seed: int | None = None,
    materialize: bool = False,
) -> Population:
    """The paper's "Mixture of Truncated Normals" family (the default
    workload for most synthetic experiments)."""
    rng = as_rng(seed)
    sizes = _equal_sizes(total_size, k)
    groups = []
    for i in range(k):
        n_comp = int(rng.integers(1, 6))
        comps = [
            TruncatedNormal(
                rng.uniform(0.0, c), float(np.sqrt(rng.uniform(1.0, 10.0))), 0.0, c
            )
            for _ in range(n_comp)
        ]
        dist = Mixture(comps)
        groups.append(_build_group(f"g{i}", dist, sizes[i], materialize, rng))
    return Population(groups=groups, c=c, name=f"mixture(k={k},N={total_size})")


def make_bernoulli_dataset(
    k: int = DEFAULT_K,
    total_size: int = DEFAULT_TOTAL_SIZE,
    c: float = DEFAULT_C,
    seed: int | None = None,
    materialize: bool = False,
) -> Population:
    """The paper's "Bernoulli" family: values in {0, c} with random bias."""
    rng = as_rng(seed)
    sizes = _equal_sizes(total_size, k)
    groups = []
    for i in range(k):
        p = rng.uniform(0.0, 1.0)
        dist = TwoPoint(p, 0.0, c)
        groups.append(_build_group(f"g{i}", dist, sizes[i], materialize, rng))
    return Population(groups=groups, c=c, name=f"bernoulli(k={k},N={total_size})")


def make_hard_dataset(
    k: int = DEFAULT_K,
    gamma: float = 0.1,
    group_size: int = DEFAULT_TOTAL_SIZE // DEFAULT_K,
    c: float = DEFAULT_C,
    seed: int | None = None,
    materialize: bool = False,
) -> Population:
    """The paper's "Hard Bernoulli" family: group i's mean is 40 + gamma*i.

    eta (the minimal distance between means) equals gamma exactly, so
    c^2/gamma^2 controls the instance difficulty (Fig. 5(b)).
    """
    if not 0.0 < gamma < 2.0:
        raise ValueError(f"gamma must be in (0, 2), got {gamma}")
    rng = as_rng(seed)
    groups = []
    for i in range(k):
        mean = 40.0 + gamma * (i + 1)
        dist = TwoPoint(mean / c, 0.0, c)
        groups.append(_build_group(f"g{i}", dist, group_size, materialize, rng))
    return Population(groups=groups, c=c, name=f"hard(k={k},gamma={gamma})")


def make_skewed_mixture_dataset(
    k: int = DEFAULT_K,
    total_size: int = 1_000_000,
    first_fraction: float = 0.5,
    c: float = DEFAULT_C,
    seed: int | None = None,
    materialize: bool = False,
) -> Population:
    """Mixture dataset where the first group holds ``first_fraction`` of the
    records and the rest share the remainder equally (Fig. 7(a) skew sweep)."""
    if not 0.0 < first_fraction < 1.0:
        raise ValueError(f"first_fraction must be in (0, 1), got {first_fraction}")
    if k < 2:
        raise ValueError("the skewed dataset needs at least 2 groups")
    rng = as_rng(seed)
    first = max(int(total_size * first_fraction), 1)
    rest = _equal_sizes(total_size - first, k - 1)
    sizes = [first] + rest
    groups = []
    for i in range(k):
        n_comp = int(rng.integers(1, 6))
        comps = [
            TruncatedNormal(
                rng.uniform(0.0, c), float(np.sqrt(rng.uniform(1.0, 10.0))), 0.0, c
            )
            for _ in range(n_comp)
        ]
        groups.append(_build_group(f"g{i}", Mixture(comps), sizes[i], materialize, rng))
    return Population(
        groups=groups, c=c, name=f"skewed-mixture(k={k},f={first_fraction})"
    )


#: Named generator families, so catalog sources and the CLI can refer to a
#: synthetic workload by string spec instead of importing factory functions:
#: ``SyntheticSource("mixture", k=10, total_size=10_000_000, seed=0)``.
SYNTHETIC_FAMILIES = {
    "truncnorm": make_truncnorm_dataset,
    "mixture": make_mixture_dataset,
    "bernoulli": make_bernoulli_dataset,
    "hard": make_hard_dataset,
    "skewed-mixture": make_skewed_mixture_dataset,
}
