"""Process-backed shard execution: persistent spawn workers over shared memory.

:class:`ProcessShardPool` is the muscle behind
``ShardedEngine(executor="process")``: one persistent worker process per
non-empty shard (``spawn`` context - no inherited state, identical semantics
on every platform), each owning its shard's
:class:`~repro.engines.base.EngineRun` and fused block kernels over a
sub-population rebuilt zero-copy from shared-memory segments
(:mod:`repro.engines.shm`).  The parent never ships data - only tiny
``(command, gids, count)`` tuples travel down each worker's pipe, and result
matrices come back through a preallocated per-worker shared output buffer
(grown geometrically, parent-owned), so a fused draw moves exactly one
``(count, m)`` float64 block through memory, not through pickle.

Determinism: workers rebuild per-group RNG streams from the *same*
``SeedSequence`` children the thread executor (and the plain engines) spawn
(:func:`repro._util.spawn_group_seed_seqs`), in the same gid order, so the
PR-3 shard-merge contract holds verbatim - asserted by running the sharded
determinism test matrix against ``executor="process"``.

Lifecycle: the pool owns every segment it created and each worker process.
``shutdown()`` stops workers (terminating any that will not exit, e.g. after
a crash) and releases each owned segment exactly once through the
:class:`~repro.engines.shm.ShmRegistry`; a worker that died mid-run surfaces
as ``WorkerCrashed`` on the next command, and shutdown still reclaims every
segment (asserted by the kill-the-worker test).
"""

from __future__ import annotations

import collections
import multiprocessing
import threading
import time
import traceback

import numpy as np

from repro.engines.shm import REGISTRY, SharedArrayRef, ShardPayload, build_shard_payloads

__all__ = ["ProcessShardPool", "WorkerCrashed"]

#: Initial per-worker output buffer (bytes); grown geometrically on demand.
_MIN_OUT_BYTES = 1 << 16


class WorkerCrashed(RuntimeError):
    """A shard worker process died before answering a command."""


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------


def _worker_main(conn, payload: ShardPayload) -> None:
    """Entry point of one shard worker process.

    Protocol (parent -> worker, one reply per command):

    * ``("open_run", run_id, seed_seqs, without_replacement, row_bytes)``
    * ``("draw_block", run_id, gids, count, out_ref)`` -> ``(shape, seconds)``
    * ``("draw", run_id, gid, count, out_ref)`` -> ``(shape, seconds)``
    * ``("close_run", run_id)``
    * ``("stop",)``

    Replies are ``("ok", value)`` or ``("err", exception, traceback_text)``.
    Errors (e.g. group exhaustion) leave the worker alive, mirroring the
    thread fan-out where a raised draw does not kill the pool.
    """
    from repro._util import rngs_from_seed_seqs
    from repro.engines.base import EngineRun, NullCostModel
    from repro.engines.shm import ShmRegistry

    registry = ShmRegistry()  # this worker's private segment table
    population = payload.build_population(registry)
    runs: dict[int, EngineRun] = {}
    out_name: str | None = None
    out_view: np.ndarray | None = None

    def out_buffer(ref: SharedArrayRef) -> np.ndarray:
        nonlocal out_name, out_view
        if ref.name != out_name:
            if out_name is not None:
                registry.release(out_name)
            out_view = registry.attach(ref)
            out_name = ref.name
        return out_view

    try:
        conn.send(("ok", "ready"))
        while True:
            try:
                msg = conn.recv()
            except EOFError:  # parent went away; nothing left to serve
                break
            cmd = msg[0]
            try:
                if cmd == "open_run":
                    _, run_id, seed_seqs, without_replacement, row_bytes = msg
                    rngs = rngs_from_seed_seqs(seed_seqs)
                    samplers = [
                        group.sampler(rng, without_replacement)
                        for group, rng in zip(population.groups, rngs)
                    ]
                    # Null cost model: accounting happens once, parent-side.
                    runs[run_id] = EngineRun(
                        population, samplers, NullCostModel(), row_bytes
                    )
                    reply = None
                elif cmd in ("draw_block", "draw"):
                    _, run_id, gids, count, out_ref = msg
                    run = runs[run_id]
                    t0 = time.thread_time()
                    if cmd == "draw_block":
                        block = run.draw_block(gids, count)
                    else:
                        block = run.draw(int(gids), count)
                    seconds = time.thread_time() - t0
                    flat = np.ascontiguousarray(block).reshape(-1)
                    out_buffer(out_ref)[: flat.size] = flat
                    reply = (block.shape, seconds)
                elif cmd == "close_run":
                    runs.pop(msg[1], None)
                    reply = None
                elif cmd == "stop":
                    conn.send(("ok", None))
                    break
                else:  # pragma: no cover - protocol is fixed at build time
                    raise ValueError(f"unknown worker command {cmd!r}")
                conn.send(("ok", reply))
            except BaseException as exc:  # noqa: BLE001 - forwarded verbatim
                text = traceback.format_exc()
                try:
                    conn.send(("err", exc, text))
                except Exception:  # unpicklable exception: degrade to text
                    conn.send(
                        ("err", RuntimeError(f"{type(exc).__name__}: {exc}"), text)
                    )
    finally:
        for name in list(registry.active_names()):
            registry.release(name)
        conn.close()


# ---------------------------------------------------------------------------
# Parent side
# ---------------------------------------------------------------------------


class _Worker:
    """Parent-side record of one shard worker."""

    __slots__ = ("process", "conn", "lock", "out_ref", "alive")

    def __init__(self, process, conn) -> None:
        self.process = process
        self.conn = conn
        self.lock = threading.Lock()
        self.out_ref: SharedArrayRef | None = None
        self.alive = True


class ProcessShardPool:
    """Persistent worker processes serving one sharded engine's draws."""

    def __init__(
        self,
        population,
        shard_gids: list[np.ndarray],
        *,
        name: str = "repro-shard",
    ) -> None:
        ctx = multiprocessing.get_context("spawn")
        # Guards _closed and _owned: a draw racing shutdown() must either
        # complete against live state or fail the closed check - never
        # register a fresh segment after shutdown drained the owned list.
        self._state_lock = threading.Lock()
        payloads, self._owned = build_shard_payloads(population, shard_gids)
        self._workers: list[_Worker] = []
        self._closed = False
        # Run ids whose parent-side run was garbage collected; drained (with
        # real close_run commands) on the next open_run.  GC finalizers only
        # ever append here - a deque append is lock-free and never blocks,
        # so collection can never deadlock on a worker lock or touch a pipe.
        self._retired: collections.deque[int] = collections.deque()
        try:
            for shard, payload in enumerate(payloads):
                parent_conn, child_conn = ctx.Pipe()
                process = ctx.Process(
                    target=_worker_main,
                    args=(child_conn, payload),
                    daemon=True,
                    name=f"{name}-{shard}",
                )
                process.start()
                child_conn.close()
                self._workers.append(_Worker(process, parent_conn))
            for shard, worker in enumerate(self._workers):
                self._recv(shard, worker)  # handshake: population built
        except BaseException:
            self.shutdown()
            raise

    @property
    def num_workers(self) -> int:
        return len(self._workers)

    # -- plumbing -----------------------------------------------------------

    def _crashed(self, shard: int, worker: _Worker) -> WorkerCrashed:
        worker.alive = False
        code = worker.process.exitcode
        return WorkerCrashed(
            f"shard worker {shard} died (exit code {code}); the query cannot "
            "continue - rerun it (segments are reclaimed on close)"
        )

    def _recv(self, shard: int, worker: _Worker):
        try:
            status, *rest = worker.conn.recv()
        except (EOFError, OSError):
            raise self._crashed(shard, worker) from None
        if status == "err":
            exc, text = rest
            if hasattr(exc, "add_note"):  # keep the worker-side traceback
                exc.add_note(f"(raised in shard worker {shard})\n{text}")
            raise exc
        return rest[0]

    def _worker(self, shard: int) -> _Worker:
        if self._closed:
            raise RuntimeError(
                "process shard pool is shut down; runs opened before a "
                "release_pool()/close() cannot draw - open a new run"
            )
        return self._workers[shard]

    def _request(self, shard: int, message: tuple):
        worker = self._worker(shard)
        if not worker.alive:
            raise self._crashed(shard, worker)
        try:
            worker.conn.send(message)
        except (BrokenPipeError, OSError):
            raise self._crashed(shard, worker) from None
        return self._recv(shard, worker)

    def _ensure_out(self, worker: _Worker, nbytes: int) -> SharedArrayRef:
        ref = worker.out_ref
        if ref is not None and ref.nbytes >= nbytes:
            return ref
        size = max(_MIN_OUT_BYTES, nbytes)
        if ref is not None:
            size = max(size, 2 * ref.nbytes)
        with self._state_lock:
            if self._closed:
                raise RuntimeError(
                    "process shard pool is shut down; runs opened before a "
                    "release_pool()/close() cannot draw - open a new run"
                )
            shm = REGISTRY.create(size)
            self._owned.append(shm.name)
            if ref is not None:
                self._owned.remove(ref.name)
        if ref is not None:
            REGISTRY.release(ref.name)
        worker.out_ref = SharedArrayRef(
            shm.name, np.dtype(np.float64).str, (size // 8,)
        )
        return worker.out_ref

    # -- commands -----------------------------------------------------------

    def open_run(
        self,
        shard: int,
        run_id: int,
        seed_seqs,
        without_replacement: bool,
        row_bytes: int,
    ) -> None:
        self._drain_retired()
        worker = self._worker(shard)
        with worker.lock:
            self._request(
                shard, ("open_run", run_id, seed_seqs, without_replacement, row_bytes)
            )

    def retire_run(self, run_id: int) -> None:
        """Mark a run's worker-side state reclaimable.

        Safe to call from a ``weakref`` finalizer (i.e. from GC at an
        arbitrary point, possibly on a thread already holding a worker
        lock): it only appends to a deque.  The actual ``close_run``
        commands run on the next :meth:`open_run`, on a normal thread.
        """
        self._retired.append(run_id)

    def _drain_retired(self) -> None:
        while True:
            try:
                run_id = self._retired.popleft()
            except IndexError:
                return
            for shard, worker in enumerate(self._workers):
                if not worker.alive:
                    continue
                with worker.lock:
                    try:
                        self._request(shard, ("close_run", run_id))
                    except (WorkerCrashed, RuntimeError):  # best-effort cleanup
                        pass

    def _fetch(self, shard: int, message_head: tuple, count: int, width: int):
        """Send a draw command and copy the result out of the shared buffer.

        The copy happens under the worker lock: the buffer is reused by the
        very next command, so the bytes must be lifted before another run's
        draw can overwrite them.
        """
        worker = self._worker(shard)
        with worker.lock:
            out_ref = self._ensure_out(worker, count * width * 8)
            shape, seconds = self._request(shard, (*message_head, out_ref))
            n = int(np.prod(shape)) if shape else 0
            block = np.empty(shape, dtype=np.float64)
            block.reshape(-1)[...] = REGISTRY.ndarray(out_ref)[:n]
        return block, float(seconds)

    def draw_block(
        self, shard: int, run_id: int, gids: np.ndarray, count: int
    ) -> tuple[np.ndarray, float]:
        gids = np.asarray(gids, dtype=np.int64)
        return self._fetch(
            shard, ("draw_block", run_id, gids, count), count, gids.size
        )

    def draw(
        self, shard: int, run_id: int, gid: int, count: int
    ) -> tuple[np.ndarray, float]:
        return self._fetch(shard, ("draw", run_id, int(gid), count), count, 1)

    # -- lifecycle ----------------------------------------------------------

    def shutdown(self, timeout: float = 5.0) -> None:
        """Stop workers and release every owned segment, exactly once.

        An in-flight draw either finishes first (the stop loop waits on its
        worker lock, and its out segment is in ``_owned`` by then) or fails
        the closed check in ``_ensure_out``/``_worker`` - so the final drain
        below always sees every owned segment.
        """
        with self._state_lock:
            if self._closed:
                return
            self._closed = True
        for shard, worker in enumerate(self._workers):
            if not worker.alive:
                continue
            with worker.lock:
                try:
                    worker.conn.send(("stop",))
                    worker.conn.recv()
                except (EOFError, OSError):
                    pass
        for worker in self._workers:
            worker.process.join(timeout=timeout)
            if worker.process.is_alive():  # pragma: no cover - stuck worker
                worker.process.terminate()
                worker.process.join(timeout=timeout)
            worker.conn.close()
        # The worker list is deliberately NOT cleared: a thread that read
        # _closed just before it flipped may still index it, and must get a
        # clean closed/crashed error from the ensuing request - never an
        # IndexError from a vanished list.
        with self._state_lock:
            owned, self._owned = self._owned, []
        for name in owned:
            REGISTRY.release(name)
