"""Process-backed shard execution: persistent spawn workers over shared memory.

:class:`ProcessShardPool` is the muscle behind
``ShardedEngine(executor="process")``: one persistent worker process per
non-empty shard (``spawn`` context - no inherited state, identical semantics
on every platform), each owning its shard's
:class:`~repro.engines.base.EngineRun` and fused block kernels over a
sub-population rebuilt zero-copy from shared-memory segments
(:mod:`repro.engines.shm`).  The parent never ships data - only tiny
``(command, gids, count)`` tuples travel down each worker's pipe, and result
matrices come back through a preallocated per-worker shared output buffer
(grown geometrically, parent-owned), so a fused draw moves exactly one
``(count, m)`` float64 block through memory, not through pickle.

Determinism: workers rebuild per-group RNG streams from the *same*
``SeedSequence`` children the thread executor (and the plain engines) spawn
(:func:`repro._util.spawn_group_seed_seqs`), in the same gid order, so the
PR-3 shard-merge contract holds verbatim - asserted by running the sharded
determinism test matrix against ``executor="process"``.

Deterministic worker recovery: everything a worker holds is either owned by
the parent (the shm payload segments) or a pure function of the parent-side
command history (sampler streams are rebuilt from ``SeedSequence`` children;
every draw advances them by amounts fixed by the command sequence and the
static data).  So the pool logs each state-mutating command per shard, and
when a worker dies - SIGKILL, OOM, a corrupt handshake - it respawns the
process from the still-live payloads and *replays the log*: the replacement
ends in a state bit-identical to where the casualty would have been, and
the in-flight command's reply comes from the replay.  Recovery is bounded
by a pool-wide restart budget (``max_restarts``); past it the original
``WorkerCrashed`` surfaces.  Crash/recovery events are recorded for
``Result.caveats`` and reported to the engine's circuit breaker.

Lifecycle: the pool owns every segment it created and each worker process.
``shutdown()`` stops workers against one shared deadline (terminate -> kill
escalation, so N stuck workers cost one timeout, not N) and releases each
owned segment exactly once through the
:class:`~repro.engines.shm.ShmRegistry`.

Fault-injection sites (:mod:`repro.resilience.faults`): ``procpool.command``
(parent-side, per fresh command: ``kill_worker``, ``kill_mid_command``,
``delay_shard``) and ``procpool.handshake`` (worker-side, per spawn:
``corrupt_handshake``).  Kill faults fire in the parent with parent-side
budgets, so a respawned worker replaying its log can never re-trigger them.
"""

from __future__ import annotations

import collections
import multiprocessing
import os
import signal
import threading
import time
import traceback

import numpy as np

from repro.engines.shm import REGISTRY, SharedArrayRef, ShardPayload, build_shard_payloads
from repro.errors import WorkerCrashed
from repro.resilience.faults import fault_at

__all__ = ["ProcessShardPool", "WorkerCrashed"]

#: Initial per-worker output buffer (bytes); grown geometrically on demand.
_MIN_OUT_BYTES = 1 << 16

#: Default pool-wide worker-restart budget.
_DEFAULT_MAX_RESTARTS = 3

#: Default build-handshake timeout (seconds).  Generous: a spawn-context
#: worker must import numpy and map its segments before it can answer.
_DEFAULT_HANDSHAKE_TIMEOUT = 30.0


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------


def _worker_main(conn, payload: ShardPayload, shard: int = 0, spawn_index: int = 0) -> None:
    """Entry point of one shard worker process.

    Protocol (parent -> worker, one reply per command):

    * ``("open_run", run_id, seed_seqs, without_replacement, row_bytes)``
    * ``("draw_block", run_id, gids, count, out_ref)`` -> ``(shape, seconds)``
    * ``("draw", run_id, gid, count, out_ref)`` -> ``(shape, seconds)``
    * ``("close_run", run_id)``
    * ``("stop",)``

    Replies are ``("ok", value)`` or ``("err", exception, traceback_text)``.
    Errors (e.g. group exhaustion) leave the worker alive, mirroring the
    thread fan-out where a raised draw does not kill the pool.
    """
    from repro._util import rngs_from_seed_seqs
    from repro.engines.base import EngineRun, NullCostModel
    from repro.engines.shm import ShmRegistry

    registry = ShmRegistry()  # this worker's private segment table
    runs: dict[int, EngineRun] = {}
    out_name: str | None = None
    out_view: np.ndarray | None = None

    def out_buffer(ref: SharedArrayRef) -> np.ndarray:
        nonlocal out_name, out_view
        if ref.name != out_name:
            if out_name is not None:
                registry.release(out_name)
            out_view = registry.attach(ref)
            out_name = ref.name
        return out_view

    try:
        fault = fault_at("procpool.handshake", shard=shard, index=spawn_index)
        if fault is not None and fault.kind == "corrupt_handshake":
            conn.send(("garbled", spawn_index))
            return
        population = payload.build_population(registry)
        conn.send(("ok", "ready"))
        while True:
            try:
                msg = conn.recv()
            except EOFError:  # parent went away; nothing left to serve
                break
            cmd = msg[0]
            try:
                if cmd == "open_run":
                    _, run_id, seed_seqs, without_replacement, row_bytes = msg
                    rngs = rngs_from_seed_seqs(seed_seqs)
                    samplers = [
                        group.sampler(rng, without_replacement)
                        for group, rng in zip(population.groups, rngs)
                    ]
                    # Null cost model: accounting happens once, parent-side.
                    runs[run_id] = EngineRun(
                        population, samplers, NullCostModel(), row_bytes
                    )
                    reply = None
                elif cmd in ("draw_block", "draw"):
                    _, run_id, gids, count, out_ref = msg
                    run = runs[run_id]
                    t0 = time.thread_time()
                    if cmd == "draw_block":
                        block = run.draw_block(gids, count)
                    else:
                        block = run.draw(int(gids), count)
                    seconds = time.thread_time() - t0
                    flat = np.ascontiguousarray(block).reshape(-1)
                    out_buffer(out_ref)[: flat.size] = flat
                    reply = (block.shape, seconds)
                elif cmd == "close_run":
                    runs.pop(msg[1], None)
                    reply = None
                elif cmd == "stop":
                    conn.send(("ok", None))
                    break
                else:  # pragma: no cover - protocol is fixed at build time
                    raise ValueError(f"unknown worker command {cmd!r}")
                conn.send(("ok", reply))
            except BaseException as exc:  # noqa: BLE001 - forwarded verbatim
                text = traceback.format_exc()
                try:
                    conn.send(("err", exc, text))
                except Exception:  # unpicklable exception: degrade to text
                    conn.send(
                        ("err", RuntimeError(f"{type(exc).__name__}: {exc}"), text)
                    )
    finally:
        for name in list(registry.active_names()):
            registry.release(name)
        conn.close()


# ---------------------------------------------------------------------------
# Parent side
# ---------------------------------------------------------------------------


class _Worker:
    """Parent-side record of one shard worker.

    ``log`` is the shard's replay journal: one normalized entry per
    state-mutating command (``open_run``/``draw_block``/``draw``), with draw
    entries stored *without* their out-buffer handle - old out segments are
    unlinked when the buffer grows, so replay substitutes the current one
    (always big enough: growth is monotone).  ``commands`` counts fresh
    (non-replay) commands; it is the fault-injection index and survives a
    respawn, so a plan's per-shard coordinates stay stable across crashes.
    """

    __slots__ = ("process", "conn", "lock", "out_ref", "alive", "log", "commands")

    def __init__(self, process, conn) -> None:
        self.process = process
        self.conn = conn
        self.lock = threading.Lock()
        self.out_ref: SharedArrayRef | None = None
        self.alive = True
        self.log: list[tuple] = []
        self.commands = 0


class ProcessShardPool:
    """Persistent worker processes serving one sharded engine's draws.

    Args:
        population / shard_gids / name: as before (PR 5).
        max_restarts: pool-wide budget of worker respawns; ``0`` disables
            recovery entirely (a crash surfaces as ``WorkerCrashed`` on the
            next command, the pre-resilience behaviour).
        handshake_timeout: seconds to wait for a worker's build handshake
            before declaring it crashed (a worker that dies *before*
            handshaking must never block the build forever).
        on_crash: optional observer called as ``on_crash(shard, exc)`` for
            every crash the pool attempts to recover from - the sharded
            engine feeds its circuit breaker with this.
    """

    def __init__(
        self,
        population,
        shard_gids: list[np.ndarray],
        *,
        name: str = "repro-shard",
        max_restarts: int = _DEFAULT_MAX_RESTARTS,
        handshake_timeout: float = _DEFAULT_HANDSHAKE_TIMEOUT,
        on_crash=None,
    ) -> None:
        if int(max_restarts) < 0:
            raise ValueError(f"max_restarts must be >= 0, got {max_restarts}")
        if handshake_timeout <= 0:
            raise ValueError(
                f"handshake_timeout must be > 0, got {handshake_timeout}"
            )
        self._ctx = multiprocessing.get_context("spawn")
        self._name = name
        self._max_restarts = int(max_restarts)
        self._restarts_left = int(max_restarts)
        self._handshake_timeout = float(handshake_timeout)
        self._on_crash = on_crash
        # Guards _closed, _owned, and _events: a draw racing shutdown() must
        # either complete against live state or fail the closed check - never
        # register a fresh segment after shutdown drained the owned list.
        self._state_lock = threading.Lock()
        self._payloads, self._owned = build_shard_payloads(population, shard_gids)
        self._workers: list[_Worker] = []
        self._spawned = [0] * len(self._payloads)
        self._events: list[str] = []
        self._closed = False
        # Run ids whose parent-side run was garbage collected; drained (with
        # real close_run commands) on the next open_run.  GC finalizers only
        # ever append here - a deque append is lock-free and never blocks,
        # so collection can never deadlock on a worker lock or touch a pipe.
        self._retired: collections.deque[int] = collections.deque()
        try:
            for shard in range(len(self._payloads)):
                process, conn = self._spawn_process(shard)
                self._workers.append(_Worker(process, conn))
            for shard, worker in enumerate(self._workers):
                try:
                    self._handshake(shard, worker)
                except WorkerCrashed as exc:
                    # Empty log: recovery here is a clean respawn+handshake.
                    self._recover(shard, exc)
        except BaseException:
            self.shutdown()
            raise

    @property
    def num_workers(self) -> int:
        return len(self._workers)

    @property
    def restarts_remaining(self) -> int:
        return self._restarts_left

    def events(self) -> list[str]:
        """Crash/recovery events recorded so far (for Result caveats)."""
        with self._state_lock:
            return list(self._events)

    def _record_event(self, text: str) -> None:
        with self._state_lock:
            self._events.append(text)

    # -- spawning and recovery ----------------------------------------------

    def _spawn_process(self, shard: int):
        parent_conn, child_conn = self._ctx.Pipe()
        process = self._ctx.Process(
            target=_worker_main,
            args=(child_conn, self._payloads[shard], shard, self._spawned[shard]),
            daemon=True,
            name=f"{self._name}-{shard}",
        )
        process.start()
        child_conn.close()
        self._spawned[shard] += 1
        return process, parent_conn

    def _reap(self, worker: _Worker) -> None:
        """Bury a dead (or doomed) worker process and its pipe."""
        try:
            worker.conn.close()
        except OSError:  # pragma: no cover - already closed
            pass
        worker.process.join(timeout=5.0)
        if worker.process.is_alive():
            worker.process.kill()
            worker.process.join(timeout=5.0)

    def _handshake(self, shard: int, worker: _Worker) -> None:
        """Wait (bounded) for the worker's build handshake.

        A worker that died or hung before handshaking must never block the
        build forever: past the timeout it is declared crashed (with its
        exit code, once reaped) and ``WorkerCrashed`` raises.
        """
        try:
            ready = worker.conn.poll(self._handshake_timeout)
        except (EOFError, OSError):
            ready = True  # the recv below surfaces the broken pipe
        if not ready:
            worker.alive = False
            self._reap(worker)
            raise WorkerCrashed(
                f"shard worker {shard} did not complete its build handshake "
                f"within {self._handshake_timeout:.1f}s and was killed "
                f"(exit code {worker.process.exitcode})"
            )
        try:
            reply = worker.conn.recv()
        except (EOFError, OSError):
            raise self._crashed(shard, worker) from None
        if not (isinstance(reply, tuple) and len(reply) == 2 and reply[0] == "ok"):
            worker.alive = False
            self._reap(worker)
            raise WorkerCrashed(
                f"shard worker {shard} sent a corrupt build handshake "
                f"({reply!r}); it was killed (exit code {worker.process.exitcode})"
            )

    def _recover(self, shard: int, cause: WorkerCrashed, raise_last: bool = True):
        """Respawn the shard's worker and replay its command log.

        Returns the final replayed reply (the in-flight command's answer,
        when the caller logged it before crashing).  Raises ``cause`` when
        the pool is closed or the restart budget is exhausted; each failed
        recovery attempt consumes budget, so a persistent killer cannot
        loop forever.
        """
        worker = self._workers[shard]
        while True:
            with self._state_lock:
                if self._closed:
                    raise cause
                if self._restarts_left <= 0:
                    self._events.append(
                        f"shard worker {shard} died and the pool restart "
                        f"budget (max_restarts={self._max_restarts}) is "
                        "exhausted; no recovery attempted"
                    )
                    raise cause
                self._restarts_left -= 1
            if self._on_crash is not None:
                self._on_crash(shard, cause)
            self._reap(worker)
            process, conn = self._spawn_process(shard)
            worker.process, worker.conn = process, conn
            worker.alive = True
            try:
                self._handshake(shard, worker)
                last = self._replay(shard, worker, raise_last=raise_last)
            except WorkerCrashed as exc:
                cause = exc
                continue
            self._record_event(
                f"shard worker {shard} crashed ({cause}) and was respawned; "
                f"{len(worker.log)} logged commands were replayed "
                "deterministically"
            )
            return last

    def _replay(self, shard: int, worker: _Worker, *, raise_last: bool):
        """Re-issue the shard's logged commands against a fresh worker.

        Draw entries get the *current* out buffer attached (big enough by
        monotone growth).  Worker-side errors on non-final entries already
        surfaced to their original callers, so they are swallowed here to
        reproduce the original state; the final entry's error propagates
        only when it answers an in-flight command (``raise_last``).
        """
        last = None
        for i, entry in enumerate(worker.log):
            if entry[0] in ("draw_block", "draw"):
                count = entry[3]
                width = entry[2].size if entry[0] == "draw_block" else 1
                out_ref = self._ensure_out(worker, count * width * 8)
                message = (*entry, out_ref)
            else:
                message = entry
            try:
                worker.conn.send(message)
            except (BrokenPipeError, OSError):
                raise self._crashed(shard, worker) from None
            try:
                last = self._recv(shard, worker)
            except WorkerCrashed:
                raise
            except Exception:
                if raise_last and i == len(worker.log) - 1:
                    raise
                last = None
        return last

    # -- plumbing -----------------------------------------------------------

    def _crashed(self, shard: int, worker: _Worker) -> WorkerCrashed:
        worker.alive = False
        code = worker.process.exitcode
        return WorkerCrashed(
            f"shard worker {shard} died (exit code {code}) before answering"
        )

    def _recv(self, shard: int, worker: _Worker):
        try:
            status, *rest = worker.conn.recv()
        except (EOFError, OSError):
            raise self._crashed(shard, worker) from None
        if status == "err":
            exc, text = rest
            if hasattr(exc, "add_note"):  # keep the worker-side traceback
                exc.add_note(f"(raised in shard worker {shard})\n{text}")
            raise exc
        return rest[0]

    def _worker(self, shard: int) -> _Worker:
        if self._closed:
            raise RuntimeError(
                "process shard pool is shut down; runs opened before a "
                "release_pool()/close() cannot draw - open a new run"
            )
        return self._workers[shard]

    def _kill_worker(self, worker: _Worker) -> None:
        """Apply a planned kill fault: SIGKILL, then wait for the death to
        be observable (so the fault is deterministic, not racy)."""
        try:
            os.kill(worker.process.pid, signal.SIGKILL)
        except (OSError, TypeError):  # pragma: no cover - already gone
            pass
        worker.process.join(timeout=10)

    def _roundtrip(self, shard: int, message: tuple, entry: tuple | None = None):
        """One command round-trip, with logging, faults, and recovery.

        Must run under the shard worker's lock.  ``entry`` is the normalized
        replay-log record for state-mutating commands; ``None`` marks
        commands that are not replayed (``close_run``) and are instead
        re-sent after a recovery.
        """
        worker = self._worker(shard)
        fault = None
        if entry is not None:
            index = worker.commands
            worker.commands += 1
            worker.log.append(entry)
            fault = fault_at("procpool.command", shard=shard, index=index)
        while True:
            try:
                if not worker.alive:
                    raise self._crashed(shard, worker)
                kill_after = False
                if fault is not None:
                    if fault.kind == "delay_shard":
                        time.sleep(fault.delay_s)
                    elif fault.kind == "kill_worker":
                        self._kill_worker(worker)
                    elif fault.kind == "kill_mid_command":
                        kill_after = True
                    fault = None  # one firing per fresh command
                try:
                    worker.conn.send(message)
                    if kill_after:
                        # The parent is about to block on the result pipe
                        # with the command already in flight - the exact
                        # mid-command death the chaos suite exercises.
                        self._kill_worker(worker)
                    return self._recv(shard, worker)
                except (BrokenPipeError, OSError):
                    raise self._crashed(shard, worker) from None
            except WorkerCrashed as exc:
                answered = entry is not None
                last = self._recover(shard, exc, raise_last=answered)
                if answered:
                    # The in-flight command was the log's final entry; its
                    # replayed reply is the answer.
                    return last
                # Unlogged command (close_run): re-send it this iteration.

    def _ensure_out(self, worker: _Worker, nbytes: int) -> SharedArrayRef:
        ref = worker.out_ref
        if ref is not None and ref.nbytes >= nbytes:
            return ref
        size = max(_MIN_OUT_BYTES, nbytes)
        if ref is not None:
            size = max(size, 2 * ref.nbytes)
        with self._state_lock:
            if self._closed:
                raise RuntimeError(
                    "process shard pool is shut down; runs opened before a "
                    "release_pool()/close() cannot draw - open a new run"
                )
            shm = REGISTRY.create(size)
            self._owned.append(shm.name)
            if ref is not None:
                self._owned.remove(ref.name)
        if ref is not None:
            REGISTRY.release(ref.name)
        worker.out_ref = SharedArrayRef(
            shm.name, np.dtype(np.float64).str, (size // 8,)
        )
        return worker.out_ref

    # -- commands -----------------------------------------------------------

    def open_run(
        self,
        shard: int,
        run_id: int,
        seed_seqs,
        without_replacement: bool,
        row_bytes: int,
    ) -> None:
        self._drain_retired()
        worker = self._worker(shard)
        with worker.lock:
            message = ("open_run", run_id, seed_seqs, without_replacement, row_bytes)
            self._roundtrip(shard, message, entry=message)

    def retire_run(self, run_id: int) -> None:
        """Mark a run's worker-side state reclaimable.

        Safe to call from a ``weakref`` finalizer (i.e. from GC at an
        arbitrary point, possibly on a thread already holding a worker
        lock): it only appends to a deque.  The actual ``close_run``
        commands run on the next :meth:`open_run`, on a normal thread.
        """
        self._retired.append(run_id)

    def _drain_retired(self) -> None:
        while True:
            try:
                run_id = self._retired.popleft()
            except IndexError:
                return
            for shard, worker in enumerate(self._workers):
                if not worker.alive:
                    continue
                with worker.lock:
                    try:
                        self._roundtrip(shard, ("close_run", run_id))
                    except (WorkerCrashed, RuntimeError):  # best-effort cleanup
                        pass
                    else:
                        # The run is gone worker-side; replay no longer
                        # needs its commands.
                        worker.log = [e for e in worker.log if e[1] != run_id]

    def _fetch(self, shard: int, message_head: tuple, count: int, width: int):
        """Send a draw command and copy the result out of the shared buffer.

        The copy happens under the worker lock: the buffer is reused by the
        very next command, so the bytes must be lifted before another run's
        draw can overwrite them.
        """
        worker = self._worker(shard)
        with worker.lock:
            out_ref = self._ensure_out(worker, count * width * 8)
            shape, seconds = self._roundtrip(
                shard, (*message_head, out_ref), entry=message_head
            )
            n = int(np.prod(shape)) if shape else 0
            block = np.empty(shape, dtype=np.float64)
            block.reshape(-1)[...] = REGISTRY.ndarray(worker.out_ref)[:n]
        return block, float(seconds)

    def draw_block(
        self, shard: int, run_id: int, gids: np.ndarray, count: int
    ) -> tuple[np.ndarray, float]:
        gids = np.asarray(gids, dtype=np.int64)
        return self._fetch(
            shard, ("draw_block", run_id, gids, count), count, gids.size
        )

    def draw(
        self, shard: int, run_id: int, gid: int, count: int
    ) -> tuple[np.ndarray, float]:
        return self._fetch(shard, ("draw", run_id, int(gid), count), count, 1)

    # -- lifecycle ----------------------------------------------------------

    def shutdown(self, timeout: float = 5.0) -> None:
        """Stop workers and release every owned segment, exactly once.

        An in-flight draw either finishes first (the stop loop waits on its
        worker lock, and its out segment is in ``_owned`` by then) or fails
        the closed check in ``_ensure_out``/``_worker`` - so the final drain
        below always sees every owned segment.

        Join discipline: all workers share *one* deadline.  Any worker
        still alive at the deadline is terminated; any still alive a grace
        period after that is killed - so N stuck workers cost one timeout,
        not N.
        """
        with self._state_lock:
            if self._closed:
                return
            self._closed = True
        for shard, worker in enumerate(self._workers):
            if not worker.alive:
                continue
            with worker.lock:
                try:
                    worker.conn.send(("stop",))
                    worker.conn.recv()
                except (EOFError, OSError):
                    pass
        deadline = time.monotonic() + timeout
        for worker in self._workers:
            worker.process.join(timeout=max(0.0, deadline - time.monotonic()))
            if worker.process.is_alive():  # pragma: no cover - stuck worker
                worker.process.terminate()
        grace = deadline + 1.0
        for worker in self._workers:
            if worker.process.is_alive():  # pragma: no cover - stuck worker
                worker.process.join(timeout=max(0.0, grace - time.monotonic()))
                if worker.process.is_alive():
                    worker.process.kill()
                    worker.process.join(timeout=1.0)
            worker.conn.close()
        # The worker list is deliberately NOT cleared: a thread that read
        # _closed just before it flipped may still index it, and must get a
        # clean closed/crashed error from the ensuing request - never an
        # IndexError from a vanished list.
        with self._state_lock:
            owned, self._owned = self._owned, []
        for name in owned:
            REGISTRY.release(name)
