"""Sampling-engine protocol shared by the in-memory and NEEDLETAIL engines.

An *engine* wraps a :class:`~repro.data.population.Population` and provides
per-run sampling streams plus cost accounting.  The paper's setting (Section
2.1) assumes "an engine that allows us to efficiently retrieve random samples
from R corresponding to different values of X" at uniform cost per sample;
:class:`repro.engines.memory.InMemoryEngine` is the pure version of that, and
:class:`repro.needletail.engine.NeedletailEngine` adds bitmap-index rowid
selection and a simulated-disk cost model.

Cost accounting is *explicit*: algorithms call ``run.draw(gid, count)`` to
obtain sample values (uncharged - batched executors may discard a pre-drawn
suffix) and then ``run.charge(gid, count)`` for the samples actually consumed
by the algorithm.  Only charged samples appear in :class:`RunStats` and incur
simulated I/O and CPU time.

The fused fast path: ``run.draw_block(active_idx, count)`` returns a
``(count, k_active)`` matrix in one call, served by per-sampler-kind block
kernels (see :mod:`repro.data.population`), and ``run.charge_block`` accounts
for a whole batch of consumed samples at once.  Both are semantically
identical to the per-group loops they replace - ``draw_block`` is bit-exact
for every sampler kind - so executors can adopt them without changing
results.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro._util import spawn_group_rngs
from repro.data.population import BlockKernel, GroupSampler, Population

__all__ = ["CostModel", "NullCostModel", "RunStats", "EngineRun", "SamplingEngine"]


class CostModel:
    """Maps physical operations to simulated (io_seconds, cpu_seconds)."""

    def sample_cost(self, count: int) -> tuple[float, float]:
        """Cost of retrieving ``count`` random tuples through the engine."""
        raise NotImplementedError

    def scan_cost(self, rows: int, row_bytes: int) -> tuple[float, float]:
        """Cost of a full sequential scan over ``rows`` rows."""
        raise NotImplementedError

    def block_sample_cost(self, count: int, groups: int) -> tuple[float, float]:
        """Cost of retrieving ``count`` samples from each of ``groups`` groups.

        The default preserves the exact semantics of ``groups`` successive
        :meth:`sample_cost` calls (cost models may be stateful); linear
        models override this with a closed form.
        """
        io = cpu = 0.0
        for _ in range(groups):
            step_io, step_cpu = self.sample_cost(count)
            io += step_io
            cpu += step_cpu
        return io, cpu


class NullCostModel(CostModel):
    """Zero-cost model: sample counting only (algorithm-level experiments)."""

    def sample_cost(self, count: int) -> tuple[float, float]:
        return 0.0, 0.0

    def scan_cost(self, rows: int, row_bytes: int) -> tuple[float, float]:
        return 0.0, 0.0

    def block_sample_cost(self, count: int, groups: int) -> tuple[float, float]:
        return 0.0, 0.0


@dataclass
class RunStats:
    """Charged work for one algorithm run."""

    samples_per_group: np.ndarray
    io_seconds: float = 0.0
    cpu_seconds: float = 0.0
    scanned_rows: int = 0

    @property
    def total_samples(self) -> int:
        return int(self.samples_per_group.sum())

    @property
    def total_seconds(self) -> float:
        return self.io_seconds + self.cpu_seconds

    def merge(self, other: "RunStats") -> "RunStats":
        """Combine two runs' accounting (used by multi-phase algorithms)."""
        return RunStats(
            samples_per_group=self.samples_per_group + other.samples_per_group,
            io_seconds=self.io_seconds + other.io_seconds,
            cpu_seconds=self.cpu_seconds + other.cpu_seconds,
            scanned_rows=self.scanned_rows + other.scanned_rows,
        )


class _SequentialBlockKernel(BlockKernel):
    """Fallback kernel: per-column draws, no ``np.stack`` temporaries.

    Used for sampler kinds without a fused implementation (e.g. materialized
    with-replacement streams, whose bit-exactness requires one RNG call per
    group stream).
    """

    def __init__(self, samplers: list[GroupSampler], gids: np.ndarray) -> None:
        super().__init__(gids)
        self._samplers = samplers

    def draw_into(
        self, out: np.ndarray, cols: np.ndarray, gids: np.ndarray, count: int
    ) -> None:
        slots = self.slots(gids)
        for slot, col in zip(slots, cols):
            out[:, col] = self._samplers[int(slot)].draw(count)


def _build_block_kernels(
    samplers: list[GroupSampler],
) -> tuple[list[BlockKernel], np.ndarray]:
    """Partition samplers by class and build one block kernel per kind."""
    kind_of = np.zeros(len(samplers), dtype=np.int64)
    kernels: list[BlockKernel] = []
    by_cls: dict[type, list[int]] = {}
    for gid, sampler in enumerate(samplers):
        by_cls.setdefault(type(sampler), []).append(gid)
    for cls, gids in by_cls.items():
        gid_arr = np.asarray(gids, dtype=np.int64)
        subs = [samplers[g] for g in gids]
        kernel = cls.make_block_kernel(subs, gid_arr)
        if kernel is None:
            kernel = _SequentialBlockKernel(subs, gid_arr)
        kind_of[gid_arr] = len(kernels)
        kernels.append(kernel)
    return kernels, kind_of


class EngineRun:
    """One algorithm run's view of the engine: streams + accounting.

    Concurrency contract: a run is *single-consumer* - its samplers and
    stats are mutable state owned by the one query driving it.  Runs share
    no sampling state with each other, so runs over engines with stateless
    cost models (the default ``NullCostModel``, the linear NEEDLETAIL model)
    may execute in parallel without locks; a *stateful* cost model (e.g. the
    page-cache model) is shared engine-wide, so concurrent runs over one
    such engine would race on it - build one engine per concurrent query
    instead, which is what the session planner does for ``Session.submit()``.
    The sharded backend (:class:`repro.engines.sharded.ShardedRun`)
    parallelizes *within* one run by giving each shard its own private
    ``EngineRun``.
    """

    def __init__(
        self,
        population: Population,
        samplers: list[GroupSampler],
        cost_model: CostModel,
        row_bytes: int,
    ) -> None:
        self._population = population
        self._samplers = samplers
        self._cost = cost_model
        self._row_bytes = row_bytes
        self._kernels, self._kind_of = _build_block_kernels(samplers)
        self.stats = RunStats(samples_per_group=np.zeros(population.k, dtype=np.int64))

    @property
    def k(self) -> int:
        return self._population.k

    @property
    def c(self) -> float:
        return self._population.c

    def sizes(self) -> np.ndarray:
        return self._population.sizes()

    def group_names(self) -> list[str]:
        return self._population.group_names

    def draw(self, gid: int, count: int) -> np.ndarray:
        """Next ``count`` samples of group ``gid``'s stream (uncharged)."""
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        if count == 0:
            return np.empty(0, dtype=np.float64)
        return self._samplers[gid].draw(count)

    def draw_block(self, gids: np.ndarray, count: int) -> np.ndarray:
        """Next ``count`` samples of every group in ``gids``, as one matrix.

        Returns a float64 array of shape ``(count, len(gids))`` whose column
        ``j`` holds exactly the values ``draw(gids[j], count)`` would have
        returned - the fused kernels are bit-exact with the sequential
        per-group path for every sampler kind.  Uncharged, like ``draw``.
        ``gids`` must not contain duplicates (a duplicated group would
        receive the same stream chunk twice and desync its consumed count).
        """
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        gids = np.asarray(gids, dtype=np.int64)
        if count == 0 or gids.size == 0:
            return np.empty((count, gids.size), dtype=np.float64)
        if len(self._kernels) == 1:
            return self._kernels[0].draw_matrix(gids, count)
        out = np.empty((count, gids.size), dtype=np.float64)
        kinds = self._kind_of[gids]
        for kid in np.unique(kinds):
            cols = np.flatnonzero(kinds == kid)
            self._kernels[int(kid)].draw_into(out, cols, gids[cols], count)
        return out

    def charge(self, gid: int, count: int) -> None:
        """Account for ``count`` samples of group ``gid`` actually consumed."""
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        if count == 0:
            return
        self.stats.samples_per_group[gid] += count
        io, cpu = self._cost.sample_cost(count)
        self.stats.io_seconds += io
        self.stats.cpu_seconds += cpu

    def charge_block(self, gids: np.ndarray, count: int) -> None:
        """Vectorized ``charge``: ``count`` consumed samples per group in ``gids``.

        Semantically identical to ``for g in gids: charge(g, count)`` (the
        cost model's ``block_sample_cost`` default literally replays the
        per-group calls, and linear models use a closed form).  ``gids``
        must not contain duplicates.
        """
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        gids = np.asarray(gids, dtype=np.int64)
        if count == 0 or gids.size == 0:
            return
        self.stats.samples_per_group[gids] += count
        io, cpu = self._cost.block_sample_cost(count, gids.size)
        self.stats.io_seconds += io
        self.stats.cpu_seconds += cpu

    def exact_mean(self, gid: int) -> float:
        """The exact group mean, used when a group is sampled to exhaustion.

        No extra cost is charged: the n_i samples that were drawn to reach
        exhaustion have already been charged.
        """
        return self._population.groups[gid].true_mean

    def charge_scan(self) -> None:
        """Account for a full sequential scan of the dataset (SCAN baseline)."""
        rows = int(self._population.sizes().sum())
        io, cpu = self._cost.scan_cost(rows, self._row_bytes)
        self.stats.io_seconds += io
        self.stats.cpu_seconds += cpu
        self.stats.scanned_rows += rows


class SamplingEngine:
    """Base engine: open per-run streams over a population."""

    def __init__(
        self,
        population: Population,
        cost_model: CostModel | None = None,
        row_bytes: int = 8,
    ) -> None:
        if row_bytes <= 0:
            raise ValueError(f"row_bytes must be > 0, got {row_bytes}")
        self.population = population
        self.cost_model = cost_model if cost_model is not None else NullCostModel()
        self.row_bytes = int(row_bytes)

    @property
    def k(self) -> int:
        return self.population.k

    @property
    def c(self) -> float:
        return self.population.c

    def open_run(
        self,
        seed: int | np.random.Generator | None = None,
        without_replacement: bool = True,
    ) -> EngineRun:
        """Open a fresh run: one independent sampling stream per group."""
        rngs = spawn_group_rngs(seed, self.population.k)
        samplers = [
            group.sampler(rng, without_replacement)
            for group, rng in zip(self.population.groups, rngs)
        ]
        return EngineRun(self.population, samplers, self.cost_model, self.row_bytes)

    def scan_means(self) -> tuple[np.ndarray, RunStats]:
        """Exact group means via a full sequential scan, with accounting."""
        run = EngineRun(self.population, [], self.cost_model, self.row_bytes)
        run.charge_scan()
        return self.population.true_means(), run.stats
