"""The plain in-memory sampling engine.

This is the paper's idealized setting (Section 2.2): the relation is in main
memory with an index on the group-by attribute, so retrieving one random tuple
from any group costs the same regardless of group.  No simulated I/O is
accrued unless a cost model is supplied; sample counting always works, which
is all the sample-complexity experiments (Fig. 3(a)/(c), Fig. 5-7) need.

Fast path: runs opened over materialized populations sample through the
columnar permutation store of :mod:`repro.data.population`, so a batched
executor's ``draw_block`` is one fancy-index gather per batch regardless of
the number of groups; virtual populations with uniform-transform
distributions share one RNG call per batch.  See DESIGN_PERF.md.
"""

from __future__ import annotations

import numpy as np

from repro.data.population import Population
from repro.engines.base import CostModel, SamplingEngine

__all__ = ["InMemoryEngine"]


class InMemoryEngine(SamplingEngine):
    """Sampling engine over an in-memory (or virtual) population."""

    def __init__(
        self,
        population: Population,
        cost_model: CostModel | None = None,
        row_bytes: int = 8,
    ) -> None:
        super().__init__(population, cost_model=cost_model, row_bytes=row_bytes)

    @classmethod
    def from_arrays(
        cls,
        names: list[str],
        arrays: list[np.ndarray],
        c: float,
        cost_model: CostModel | None = None,
    ) -> "InMemoryEngine":
        """Convenience constructor from parallel name/value-array lists."""
        return cls(Population.from_arrays(names, arrays, c), cost_model=cost_model)
