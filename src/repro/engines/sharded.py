"""Sharded execution: fan one engine's sampling work out across N shards.

:class:`ShardedEngine` wraps any :class:`~repro.engines.base.SamplingEngine`
(memory, NEEDLETAIL, the no-index substrate, or a third-party backend) and
partitions its groups into N shards (:mod:`repro.engines.partition`).  Each
shard owns an independent :class:`~repro.engines.base.EngineRun` over its
sub-population, so a fused ``draw_block`` request fans out to per-shard block
kernels - optionally on a thread pool - and the per-shard matrices are merged
into the caller's column order.  The algorithms above (IFOCUS and friends)
see the ordinary ``EngineRun`` interface and need no changes.

Determinism contract (asserted by ``tests/engines/test_sharded.py``):

* Group sampling streams are spawned from the root ``SeedSequence`` exactly
  as the plain engines spawn them (:func:`repro._util.spawn_group_rngs`), and
  each shard receives its groups' streams.  A shard therefore owns a disjoint
  set of independent ``SeedSequence.spawn`` children - per-shard RNG streams
  with no cross-shard coupling.
* Merge order is stable: shard j writes only the output columns of its own
  groups, and every column is a pure function of that group's stream, so the
  merged block is bit-identical no matter how the thread pool schedules the
  shards (or whether a pool is used at all).
* ``shards=1`` builds one shard run whose samplers and fused kernels are
  constructed exactly as the wrapped engine's ``open_run`` would construct
  them, so it is bit-identical to the unsharded engine for **every** sampler
  kind.  For per-group-stream samplers (materialized, NEEDLETAIL indexed,
  rejection-based virtual) any shard count is bit-identical to the plain
  engine; only fusable virtual groups - which deliberately share one stream
  per fused kernel - draw different (equally distributed) values when the
  kernel is split across shards.
* Cost accounting is serialized at the merge layer: ``charge``/``charge_block``
  run against one global :class:`~repro.engines.base.RunStats` and the
  backend's own cost model, exactly like an unsharded run (shard runs carry a
  null model so no cost is double-counted).  Sharding parallelizes the
  physical draw work, never the accounting semantics.

Two executors serve the fan-out (``executor=`` at construction):

* ``"thread"`` (default) - per-shard :class:`EngineRun` objects in-process,
  fanned out on a lazy thread pool.  Cheap to build, but the GIL serializes
  the Python half of each draw, so elapsed time does not parallelize.
* ``"process"`` - persistent per-shard worker processes
  (:mod:`repro.engines.procpool`) mapping the population's buffers zero-copy
  from shared memory (:mod:`repro.engines.shm`).  Workers rebuild their
  groups' RNG streams from the same ``SeedSequence`` children, so the whole
  determinism contract above holds verbatim; elapsed time scales with cores.
  Requires a process-shareable population (:func:`repro.engines.shm.shareable`).
"""

from __future__ import annotations

import itertools
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro._util import rngs_from_seed_seqs, spawn_group_rngs, spawn_group_seed_seqs
from repro.data.population import Population
from repro.engines.base import EngineRun, NullCostModel, SamplingEngine
from repro.errors import WorkerCrashed
from repro.resilience.breaker import CircuitBreaker

__all__ = ["SHARD_EXECUTORS", "ShardedEngine", "ShardedRun", "ProcessShardedRun"]

#: Recognised fan-out executors for ``ShardedEngine``/``QuerySpec.executor``.
SHARD_EXECUTORS = ("thread", "process")


class ShardedRun(EngineRun):
    """One algorithm run over a sharded engine: per-shard runs + global accounting.

    Subclasses :class:`EngineRun` so the accounting surface (``charge``,
    ``charge_block``, ``charge_scan``, ``exact_mean``, ``stats``) is the
    inherited implementation over the *full* population and the backend's
    real cost model; only the draw paths are overridden to route through the
    per-shard runs.
    """

    def __init__(
        self,
        population: Population,
        shard_runs: list[EngineRun],
        shard_gids: list[np.ndarray],
        cost_model,
        row_bytes: int,
        pool_factory,
        record_timings: bool = False,
    ) -> None:
        # No samplers at this level: drawing is delegated to the shard runs.
        super().__init__(population, [], cost_model, row_bytes)
        self._runs = shard_runs
        self._shard_gids = shard_gids
        self._pool_factory = pool_factory
        self._record = bool(record_timings)
        k = population.k
        self._shard_of = np.full(k, -1, dtype=np.int64)
        self._local_of = np.full(k, -1, dtype=np.int64)
        for s, gids in enumerate(shard_gids):
            self._shard_of[gids] = s
            self._local_of[gids] = np.arange(gids.size)
        #: Per-shard thread-CPU seconds spent drawing (populated only when the
        #: engine was built with ``record_timings=True``).  ``max()`` of this
        #: is the run's draw critical path - the wall time a worker-per-shard
        #: deployment would see - which the scaling microbench reports, since
        #: single-core CI containers cannot express the speedup in elapsed time.
        self.shard_seconds = np.zeros(len(shard_runs), dtype=np.float64)

    @property
    def num_shards(self) -> int:
        return len(self._runs)

    def _timed_block(self, shard: int, local_gids, count: int) -> np.ndarray:
        """One shard's fused draw, accumulating its thread-CPU seconds."""
        if not self._record:
            return self._runs[shard].draw_block(local_gids, count)
        t0 = time.thread_time()
        block = self._runs[shard].draw_block(local_gids, count)
        self.shard_seconds[shard] += time.thread_time() - t0
        return block

    def _draw_shard(self, shard: int, out, cols, local_gids, count: int) -> None:
        out[:, cols] = self._timed_block(shard, local_gids, count)

    def draw(self, gid: int, count: int) -> np.ndarray:
        shard = int(self._shard_of[gid])
        return self._runs[shard].draw(int(self._local_of[gid]), count)

    def draw_block(self, gids: np.ndarray, count: int) -> np.ndarray:
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        gids = np.asarray(gids, dtype=np.int64)
        if count == 0 or gids.size == 0:
            return np.empty((count, gids.size), dtype=np.float64)
        shards = self._shard_of[gids]
        involved = np.unique(shards)
        if involved.size == 1:
            # Single-shard request (always the case at shards=1): delegate
            # wholesale, preserving the wrapped run's exact fused path.
            return self._timed_block(int(involved[0]), self._local_of[gids], count)
        out = np.empty((count, gids.size), dtype=np.float64)
        tasks = []
        for shard in involved:
            cols = np.flatnonzero(shards == shard)
            tasks.append((int(shard), cols, self._local_of[gids[cols]]))
        pool = self._pool_factory()
        if pool is None:
            for shard, cols, local in tasks:
                self._draw_shard(shard, out, cols, local, count)
        else:
            futures = [
                pool.submit(self._draw_shard, shard, out, cols, local, count)
                for shard, cols, local in tasks
            ]
            for future in futures:
                future.result()  # propagate shard errors in stable order
        return out


class _ShardWorkerProxy:
    """Routes one shard's draw traffic to its worker process.

    Duck-types the slice of the :class:`EngineRun` draw surface that
    :class:`ShardedRun` calls on its per-shard runs, so the merge logic is
    shared verbatim between the thread and process executors.
    """

    __slots__ = ("_pool", "_shard", "_run_id", "last_seconds")

    def __init__(self, pool, shard: int, run_id: int) -> None:
        self._pool = pool
        self._shard = shard
        self._run_id = run_id
        #: Worker-side thread-CPU seconds of the most recent draw.
        self.last_seconds = 0.0

    def draw(self, gid: int, count: int) -> np.ndarray:
        if count == 0:
            return np.empty(0, dtype=np.float64)
        block, self.last_seconds = self._pool.draw(
            self._shard, self._run_id, gid, count
        )
        return block

    def draw_block(self, gids: np.ndarray, count: int) -> np.ndarray:
        block, self.last_seconds = self._pool.draw_block(
            self._shard, self._run_id, gids, count
        )
        return block


class ProcessShardedRun(ShardedRun):
    """A sharded run whose per-shard draws execute in worker processes.

    Identical merge/accounting behaviour to :class:`ShardedRun` (it *is*
    one, over worker proxies); only the timing source differs -
    ``shard_seconds`` accumulates the workers' own draw thread-CPU, since
    the parent thread spends its time blocked on the pipe, not drawing.

    Degradation: when a shard's worker is gone for good (the pool's restart
    budget ran out, so ``WorkerCrashed`` escaped the pool's own recovery),
    the run falls back to a thread-side :class:`EngineRun` for that shard -
    rebuilt from the run's own ``SeedSequence`` children and fast-forwarded
    by replaying the shard's draw history, so the continuation is
    bit-identical to an uninjured run.  Shards are independent (disjoint
    groups, disjoint streams), so degradation is per shard and needs no
    cross-shard coordination.
    """

    def __init__(
        self,
        *args,
        engine: "ShardedEngine | None" = None,
        seed_seqs=None,
        without_replacement: bool = True,
        **kwargs,
    ) -> None:
        super().__init__(*args, **kwargs)
        self._engine = engine
        self._seed_seqs = seed_seqs
        self._without_replacement = bool(without_replacement)
        #: Per-shard draw history: ("draw_block", local_gids, count) and
        #: ("draw", local_gid, count) entries, recorded while the shard is
        #: still proxy-backed.  This is the degradation replay journal.
        self._history: list[list[tuple]] = [[] for _ in self._runs]
        self._degraded = [False] * len(self._runs)

    @property
    def degraded_shards(self) -> list[int]:
        """Shards that fell back to thread-side execution mid-run."""
        return [s for s, d in enumerate(self._degraded) if d]

    def _degrade_shard(self, shard: int, cause: WorkerCrashed) -> None:
        """Swap one shard's dead proxy for a replayed thread-side run."""
        engine = self._engine
        # max_restarts=0 opts out of resilience entirely: crashes surface.
        if engine is None or self._seed_seqs is None or engine.max_restarts == 0:
            raise cause
        run = engine._thread_shard_run(
            shard, self._seed_seqs, self._without_replacement
        )
        for kind, arg, count in self._history[shard]:
            if kind == "draw_block":
                run.draw_block(arg, count)
            else:
                run.draw(arg, count)
        self._runs[shard] = run
        self._degraded[shard] = True
        self._history[shard] = []  # threads do not crash; journal closed
        engine._note_degraded_shard(shard, cause)

    def _timed_block(self, shard: int, local_gids, count: int) -> np.ndarray:
        if not self._degraded[shard]:
            proxy = self._runs[shard]
            try:
                block = proxy.draw_block(local_gids, count)
            except WorkerCrashed as exc:
                self._degrade_shard(shard, exc)
            else:
                self._history[shard].append(("draw_block", local_gids, count))
                if self._record:
                    self.shard_seconds[shard] += proxy.last_seconds
                return block
        # Thread-side (degraded) shard: re-issue the in-flight draw here.
        run = self._runs[shard]
        if not self._record:
            return run.draw_block(local_gids, count)
        t0 = time.thread_time()
        block = run.draw_block(local_gids, count)
        self.shard_seconds[shard] += time.thread_time() - t0
        return block

    def draw(self, gid: int, count: int) -> np.ndarray:
        shard = int(self._shard_of[gid])
        local = int(self._local_of[gid])
        if not self._degraded[shard]:
            proxy = self._runs[shard]
            try:
                block = proxy.draw(local, count)
            except WorkerCrashed as exc:
                self._degrade_shard(shard, exc)
            else:
                if count:  # zero-draws never reach the worker: not replayed
                    self._history[shard].append(("draw", local, count))
                return block
        return self._runs[shard].draw(local, count)


class ShardedEngine(SamplingEngine):
    """Hash/range-partition a backend engine into N parallel shards.

    Args:
        backend: any constructed :class:`SamplingEngine`; the sharded engine
            shares its population, cost model, and row width.  The backend's
            own ``open_run`` is never called - samplers are built per shard.
        shards: requested shard count (>= 1).  Shards left empty by the
            partitioner are skipped, so the effective count is
            ``len(engine.shard_gids)``.
        max_workers: fan-out pool width (dispatch threads); ``None`` means one
            worker per (non-empty) shard, ``1`` disables the pool entirely
            (sequential fan-out, still bit-identical - merge order is stable
            by construction).  With ``executor="process"`` this sizes only the
            parent-side dispatch threads; there is always one worker process
            per shard.
        partitioner: ``"range"`` (contiguous gid ranges, default) or
            ``"hash"`` (stable CRC32 of group names); see
            :mod:`repro.engines.partition`.
        record_timings: accumulate per-shard draw thread-CPU seconds on each
            run (``ShardedRun.shard_seconds``) for scaling measurements.
        executor: ``"thread"`` (in-process fan-out, default) or ``"process"``
            (persistent spawn workers over shared memory; requires a
            process-shareable population, see
            :func:`repro.engines.shm.shareable`).
        max_restarts: worker-respawn budget handed to the process pool
            (``0`` disables recovery: a crash surfaces as ``WorkerCrashed``
            immediately, the pre-resilience contract).
        breaker_threshold: worker crashes before the circuit breaker opens
            and new runs degrade to the thread executor.
    """

    def __init__(
        self,
        backend: SamplingEngine,
        shards: int = 2,
        *,
        max_workers: int | None = None,
        partitioner: str = "range",
        record_timings: bool = False,
        executor: str = "thread",
        max_restarts: int = 3,
        breaker_threshold: int = 3,
    ) -> None:
        from repro.engines.partition import partition_groups

        super().__init__(
            backend.population,
            cost_model=backend.cost_model,
            row_bytes=backend.row_bytes,
        )
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        if max_workers is not None and max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        if executor not in SHARD_EXECUTORS:
            raise ValueError(
                f"unknown executor {executor!r}; known: {SHARD_EXECUTORS}"
            )
        if executor == "process":
            from repro.engines.shm import shareable

            reason = shareable(backend.population)
            if reason is not None:
                raise ValueError(
                    f"executor='process' needs a process-shareable population: "
                    f"{reason} (use executor='thread')"
                )
        # Sharding rebuilds samplers per shard from the population, so a
        # backend whose open_run is customized would be silently bypassed -
        # refuse loudly instead (such engines register shardable=False).
        if type(backend).open_run is not SamplingEngine.open_run:
            raise TypeError(
                f"{type(backend).__name__} overrides open_run, which sharding "
                "would bypass; register it with shardable=False or shard at "
                "the backend level"
            )
        self.backend = backend
        self.partitioner = partitioner.lower()
        self.record_timings = bool(record_timings)
        self.executor = executor
        parts = partition_groups(self.population.group_names, shards, self.partitioner)
        #: Global gid arrays, one per non-empty shard, each sorted ascending.
        self.shard_gids: list[np.ndarray] = [p for p in parts if p.size]
        self.max_workers = max_workers
        self.max_restarts = int(max_restarts)
        self._pool: ThreadPoolExecutor | None = None
        self._procpool = None
        self._pool_lock = threading.Lock()
        self._run_ids = itertools.count()
        self._closed = False
        #: Opens after ``breaker_threshold`` worker crashes; open means new
        #: runs are built thread-side instead of respawning workers against
        #: whatever keeps killing them.  Sticky for the engine's lifetime.
        self.breaker = CircuitBreaker(threshold=breaker_threshold)
        self._events: list[str] = []

    @property
    def shards(self) -> int:
        """Effective (non-empty) shard count."""
        return len(self.shard_gids)

    def _get_pool(self) -> ThreadPoolExecutor | None:
        """The shared fan-out pool, created lazily; ``None`` when disabled."""
        if self.shards <= 1 or self.max_workers == 1:
            return None
        with self._pool_lock:
            if self._closed:
                raise RuntimeError("ShardedEngine is closed")
            if self._pool is None:
                workers = self.max_workers if self.max_workers is not None else self.shards
                self._pool = ThreadPoolExecutor(
                    max_workers=workers, thread_name_prefix="repro-shard"
                )
        return self._pool

    def _get_procpool(self):
        """The worker-process pool, spawned lazily (and after a release)."""
        from repro.engines.procpool import ProcessShardPool

        with self._pool_lock:
            if self._closed:
                raise RuntimeError("ShardedEngine is closed")
            if self._procpool is None:
                self._procpool = ProcessShardPool(
                    self.population,
                    self.shard_gids,
                    name=f"repro-shard-{self.population.name}",
                    max_restarts=self.max_restarts,
                    on_crash=self._record_crash,
                )
        return self._procpool

    # -- resilience ----------------------------------------------------------

    def _record_crash(self, shard: int, exc: BaseException) -> None:
        """Pool crash observer: feed the circuit breaker (thread-safe)."""
        if self.breaker.record_failure(
            f"shard workers crashed {self.breaker.threshold} times "
            f"(last: shard {shard}: {exc})"
        ):
            with self._pool_lock:
                self._events.append(
                    f"circuit breaker opened ({self.breaker.reason}); "
                    "subsequent runs use the thread executor"
                )

    def _note_degraded_shard(self, shard: int, cause: BaseException) -> None:
        """A live run lost shard ``shard`` for good and went thread-side."""
        self.breaker.trip(f"shard {shard} worker unrecoverable: {cause}")
        with self._pool_lock:
            self._events.append(
                f"shard {shard} degraded to the thread executor mid-run "
                f"after an unrecoverable worker crash ({cause}); the shard "
                "was rebuilt from its seeds and replayed bit-identically"
            )

    def resilience_events(self) -> list[str]:
        """Crash/recovery/degradation events, for ``Result.caveats``.

        Includes the process pool's own crash-recovery log; pool events are
        folded into the engine's list when the pool is released, so they
        survive ``release_pool()``.
        """
        with self._pool_lock:
            events = list(self._events)
            procpool = self._procpool
        if procpool is not None:
            events.extend(procpool.events())
        return list(dict.fromkeys(events))

    def open_run(
        self,
        seed: int | np.random.Generator | None = None,
        without_replacement: bool = True,
    ) -> ShardedRun:
        """Open a sharded run: the plain engine's streams, partitioned.

        Streams are spawned exactly as :meth:`SamplingEngine.open_run` spawns
        them - one ``SeedSequence.spawn`` child per group, in gid order - and
        handed to the owning shard, so per-group streams are independent of
        the shard layout (and of the executor: worker processes rebuild the
        same streams from the same children).
        """
        if self.executor == "process" and self.breaker.closed:
            return self._open_process_run(seed, without_replacement)
        groups = self.population.groups
        rngs = spawn_group_rngs(seed, self.population.k)
        samplers = [
            group.sampler(rng, without_replacement)
            for group, rng in zip(groups, rngs)
        ]
        shard_runs = []
        for s, gids in enumerate(self.shard_gids):
            sub = Population(
                groups=[groups[int(g)] for g in gids],
                c=self.population.c,
                name=f"{self.population.name}/shard{s}",
            )
            # Null cost model: all accounting happens once, at the merge layer.
            shard_runs.append(
                EngineRun(
                    sub,
                    [samplers[int(g)] for g in gids],
                    NullCostModel(),
                    self.row_bytes,
                )
            )
        return ShardedRun(
            self.population,
            shard_runs,
            self.shard_gids,
            self.cost_model,
            self.row_bytes,
            self._get_pool,
            record_timings=self.record_timings,
        )

    def _thread_shard_run(
        self, shard: int, seed_seqs, without_replacement: bool
    ) -> EngineRun:
        """One shard's thread-side run from explicit ``SeedSequence`` children.

        Builds the sampler streams exactly as a worker process builds them
        (same children, same gid order), so a run degraded onto this is
        bit-identical to its process-side twin after replay.
        """
        gids = self.shard_gids[shard]
        groups = self.population.groups
        rngs = rngs_from_seed_seqs([seed_seqs[int(g)] for g in gids])
        sub = Population(
            groups=[groups[int(g)] for g in gids],
            c=self.population.c,
            name=f"{self.population.name}/shard{shard}",
        )
        samplers = [
            groups[int(g)].sampler(rng, without_replacement)
            for g, rng in zip(gids, rngs)
        ]
        return EngineRun(sub, samplers, NullCostModel(), self.row_bytes)

    def _open_process_run(self, seed, without_replacement: bool) -> "ProcessShardedRun":
        import weakref

        pool = self._get_procpool()
        seeds = spawn_group_seed_seqs(seed, self.population.k)
        run_id = next(self._run_ids)
        proxies = []
        for s, gids in enumerate(self.shard_gids):
            pool.open_run(
                s,
                run_id,
                [seeds[int(g)] for g in gids],
                without_replacement,
                self.row_bytes,
            )
            proxies.append(_ShardWorkerProxy(pool, s, run_id))
        run = ProcessShardedRun(
            self.population,
            proxies,
            self.shard_gids,
            self.cost_model,
            self.row_bytes,
            self._get_pool,
            record_timings=self.record_timings,
            engine=self,
            seed_seqs=seeds,
            without_replacement=without_replacement,
        )
        # Workers keep per-run sampler state; mark it reclaimable when the
        # parent-side run is garbage collected.  retire_run only appends to
        # a deque (GC-safe: no locks, no pipe IPC from a finalizer); the
        # next open_run on this pool issues the real close_run commands.
        weakref.finalize(run, pool.retire_run, run_id)
        return run

    def release_pool(self) -> None:
        """Shut down fan-out threads *and* worker processes; later draws
        recreate them.

        Non-terminal, unlike :meth:`close`: the engine stays fully usable.
        The planner calls this when a query finishes so per-query sharded
        engines pinned by ``Result.engine`` retain neither idle threads nor
        worker processes (nor their shared-memory segments).
        """
        with self._pool_lock:
            pool, self._pool = self._pool, None
            procpool, self._procpool = self._procpool, None
        if pool is not None:
            pool.shutdown(wait=True)
        if procpool is not None:
            events = procpool.events()
            procpool.shutdown()
            if events:  # keep crash history visible after the pool is gone
                with self._pool_lock:
                    self._events.extend(
                        e for e in events if e not in self._events
                    )

    def close(self) -> None:
        """Shut down the fan-out pool and refuse new fan-outs (idempotent)."""
        with self._pool_lock:
            self._closed = True
        self.release_pool()

    def __enter__(self) -> "ShardedEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShardedEngine({type(self.backend).__name__}, shards={self.shards}, "
            f"partitioner={self.partitioner!r}, executor={self.executor!r})"
        )
