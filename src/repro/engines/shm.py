"""Zero-copy shared-memory transport for process-parallel shard execution.

The process shard executor (:mod:`repro.engines.procpool`) gives every shard
a persistent worker process that owns its shard's :class:`EngineRun` and
block kernels.  Workers must see the shard's *data* - materialized value
columns, NEEDLETAIL row-store columns, bitmap words - without pickling it
through the command pipe, so this module places those buffers into
:mod:`multiprocessing.shared_memory` segments once (parent side) and lets
each worker ``mmap`` them zero-copy.

Two layers:

* :class:`ShmRegistry` - a per-process table of live segments keyed by name,
  recording dtype, shape, a refcount, and whether this process *owns* the
  segment (creator).  Owners unlink on final release; attachers only close.
  ``REGISTRY`` is the process-wide instance; its ``active_count()`` is the
  leak oracle the test suite asserts to be zero after ``Session.close()``.
* Shard payloads - compact, picklable descriptions of one shard's
  sub-population (:func:`build_shard_payloads`): per-group metadata plus
  :class:`SharedArrayRef` handles into at most three segments per engine
  (one concatenated materialized-values buffer, one concatenated
  bitmap-words buffer, one shared row-store value column).  Workers rebuild
  the sub-:class:`~repro.data.population.Population` as *views* into the
  mapped segments (:meth:`ShardPayload.build_population`) - no copies.
  Buffers that already live in durable-store segment files (engines
  re-opened from a :class:`~repro.storage.DurableCatalog`) skip shared
  memory entirely: they ship as :class:`FileArrayRef` windows and workers
  ``np.memmap`` the same on-disk bytes read-only.

Not every population can cross the process boundary this way:
:func:`shareable` returns the reason a population must stay on the thread
executor (the planner surfaces it as a ``Result`` caveat).  Materialized
groups, NEEDLETAIL indexed groups whose selectors reduce to flat
:class:`~repro.needletail.bitvector.BitVector` words, and fusable virtual
groups (parameter-only distributions) all ship; rejection-sampled virtual
groups - whose draws run arbitrary Python sampler code with data-dependent
RNG consumption - and unknown third-party ``Group`` subclasses do not.
"""

from __future__ import annotations

import atexit
import threading
from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

from repro.data.distributions import Distribution
from repro.data.population import Group, MaterializedGroup, Population, VirtualGroup

__all__ = [
    "SharedArrayRef",
    "FileArrayRef",
    "ShmRegistry",
    "REGISTRY",
    "ShardPayload",
    "shareable",
    "file_backed_ref",
    "build_shard_payloads",
]


@dataclass(frozen=True)
class SharedArrayRef:
    """A picklable handle to one ndarray living in a shared-memory segment."""

    name: str
    dtype: str
    shape: tuple[int, ...]

    @property
    def nbytes(self) -> int:
        n = int(np.prod(self.shape)) if self.shape else 1
        return n * np.dtype(self.dtype).itemsize


@dataclass(frozen=True)
class FileArrayRef:
    """A picklable handle to one ndarray living in an on-disk segment file.

    The durable-store counterpart of :class:`SharedArrayRef`: when a
    population's buffers are already windows of read-only ``np.memmap``
    arrays over :mod:`repro.storage` segment files, workers re-map the same
    bytes straight from disk instead of receiving a shared-memory copy.
    ``offset`` is the absolute byte position of the window in the file, so
    no segment-header parsing happens worker-side.
    """

    path: str
    dtype: str
    shape: tuple[int, ...]
    offset: int

    def map(self) -> np.ndarray:
        """Map the window read-only; the page cache dedups across workers."""
        return np.memmap(
            self.path,
            dtype=np.dtype(self.dtype),
            mode="r",
            offset=int(self.offset),
            shape=tuple(self.shape),
        )


def file_backed_ref(array: np.ndarray) -> FileArrayRef | None:
    """A :class:`FileArrayRef` for ``array``, or None if it isn't mappable.

    ``array`` qualifies when its base chain bottoms out in a *read-only*
    ``np.memmap`` over a named file and the array is a C-contiguous window
    of those mapped bytes.  Writable mappings are rejected: a worker's view
    must be bit-stable for the lifetime of the run, which only the durable
    store's immutable (write-once, atomic-rename) segments guarantee.
    """
    if not isinstance(array, np.ndarray) or not array.flags.c_contiguous:
        return None
    root = array
    while isinstance(root.base, np.ndarray):
        root = root.base
    if not isinstance(root, np.memmap) or not root.flags.c_contiguous:
        return None
    if getattr(root, "filename", None) is None or getattr(root, "mode", None) != "r":
        return None
    span = array.__array_interface__["data"][0] - root.__array_interface__["data"][0]
    if span < 0 or span + array.nbytes > root.nbytes:
        return None
    return FileArrayRef(
        path=str(root.filename),
        dtype=array.dtype.str,
        shape=tuple(array.shape),
        offset=int(root.offset) + int(span),
    )


class ShmRegistry:
    """Per-process bookkeeping for shared-memory segments.

    Guarantees the lifecycle contract of the process executor: every
    segment is closed exactly once and unlinked exactly once (by its
    creator), no matter how many refs were handed out or whether a worker
    crashed mid-run.  All methods are thread-safe - the session submit pool
    builds and tears down process engines concurrently.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        # name -> [SharedMemory, refcount, owner]
        self._entries: dict[str, list] = {}

    def create(self, nbytes: int) -> shared_memory.SharedMemory:
        """Create and register an owned segment of ``nbytes`` bytes."""
        if nbytes <= 0:
            raise ValueError(f"segment size must be > 0, got {nbytes}")
        shm = shared_memory.SharedMemory(create=True, size=int(nbytes))
        with self._lock:
            self._entries[shm.name] = [shm, 1, True]
        return shm

    def share_array(self, array: np.ndarray) -> SharedArrayRef:
        """Copy ``array`` into a fresh owned segment; returns its handle."""
        array = np.ascontiguousarray(array)
        shm = self.create(max(array.nbytes, 1))
        view = np.ndarray(array.shape, dtype=array.dtype, buffer=shm.buf)
        view[...] = array
        return SharedArrayRef(shm.name, array.dtype.str, tuple(array.shape))

    def attach(self, ref: SharedArrayRef) -> np.ndarray:
        """Map an existing segment (refcounted) and return its ndarray view.

        Attaching registers the name with the resource tracker *shared* with
        the creating process (spawn children inherit its fd), where the
        per-name cache is a set - so this is a no-op there, and the single
        unregister happens at the owner's ``unlink``.  Workers therefore
        only ever ``close()`` their mappings; unlink stays with the parent.
        """
        with self._lock:
            entry = self._entries.get(ref.name)
            if entry is None:
                shm = shared_memory.SharedMemory(name=ref.name)
                entry = [shm, 0, False]
                self._entries[ref.name] = entry
            entry[1] += 1
            shm = entry[0]
        return np.ndarray(ref.shape, dtype=np.dtype(ref.dtype), buffer=shm.buf)

    def ndarray(self, ref: SharedArrayRef) -> np.ndarray:
        """A view over an already-registered segment (no refcount change)."""
        with self._lock:
            shm = self._entries[ref.name][0]
        return np.ndarray(ref.shape, dtype=np.dtype(ref.dtype), buffer=shm.buf)

    def release(self, name: str) -> None:
        """Drop one ref; close (and unlink, if owned) at zero.  Idempotent
        past zero: releasing an unknown name is a no-op, so crash-path and
        normal-path teardown can overlap without double-unlink."""
        with self._lock:
            entry = self._entries.get(name)
            if entry is None:
                return
            entry[1] -= 1
            if entry[1] > 0:
                return
            del self._entries[name]
            shm, _, owner = entry
        shm.close()
        if owner:
            try:
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass

    def active_names(self) -> list[str]:
        with self._lock:
            return sorted(self._entries)

    def active_count(self) -> int:
        with self._lock:
            return len(self._entries)

    def sweep_owned(self) -> list[str]:
        """Force-release every still-registered *owned* segment.

        The crash-safety net behind the ``atexit`` hook below: a process
        that exits without ``close()``-ing its pools (Ctrl-C mid-query, a
        test harness that leaks a session) must not leave named segments
        behind in ``/dev/shm``.  Owned entries are closed and unlinked
        regardless of their refcount; attached (non-owned) entries are only
        closed - unlinking stays with their creator.  Returns the names
        swept, oldest registration first.
        """
        with self._lock:
            entries, self._entries = self._entries, {}
        swept = []
        for name, (shm, _refcount, owner) in entries.items():
            shm.close()
            if owner:
                swept.append(name)
                try:
                    shm.unlink()
                except FileNotFoundError:  # pragma: no cover - already gone
                    pass
        return swept


#: The process-wide registry.  Parent and workers each hold their own
#: instance (one per process); segment *names* are the cross-process keys.
REGISTRY = ShmRegistry()

# Last-resort leak guard: unlink whatever the process-wide registry still
# owns when the interpreter exits, so orphaned segments never outlive the
# parent even if no pool shutdown ran.  Registered once at import; normal
# teardown leaves the registry empty and makes this a no-op.
atexit.register(REGISTRY.sweep_owned)


# ---------------------------------------------------------------------------
# Shard payloads
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class _MaterializedSpec:
    """One materialized group: a slice of the shard's flat values buffer."""

    name: str
    lo: int
    hi: int


@dataclass(frozen=True)
class _IndexedSpec:
    """One NEEDLETAIL group: a word-slice of the bitmap buffer + row count."""

    name: str
    word_lo: int
    word_hi: int
    length: int


@dataclass(frozen=True)
class _VirtualSpec:
    """One fusable virtual group: distribution parameters travel by pickle."""

    name: str
    dist: Distribution
    size: int


@dataclass(frozen=True)
class ShardPayload:
    """Everything a worker needs to rebuild one shard's sub-population.

    Each buffer handle is either a :class:`SharedArrayRef` (parent copied
    the bytes into shared memory) or a :class:`FileArrayRef` (the bytes
    already live in a durable-store segment file and workers map them from
    disk).  Only shared-memory refs participate in registry refcounting -
    file mappings are closed by the garbage collector and unlink nothing.
    """

    population_name: str
    c: float
    groups: tuple
    values_flat: SharedArrayRef | FileArrayRef | None = None
    bitmap_words: SharedArrayRef | FileArrayRef | None = None
    value_column: SharedArrayRef | FileArrayRef | None = None

    def segment_refs(self) -> list[SharedArrayRef]:
        """The payload's *shared-memory* refs (file refs need no cleanup)."""
        return [
            ref
            for ref in (self.values_flat, self.bitmap_words, self.value_column)
            if isinstance(ref, SharedArrayRef)
        ]

    def build_population(self, registry: ShmRegistry) -> Population:
        """Reconstruct the sub-population as zero-copy views (worker side)."""
        from repro.needletail.bitvector import BitVector
        from repro.needletail.engine import IndexedGroup

        def attach(ref: SharedArrayRef | FileArrayRef | None) -> np.ndarray | None:
            if ref is None:
                return None
            if isinstance(ref, FileArrayRef):
                return ref.map()
            return registry.attach(ref)

        values_flat = attach(self.values_flat)
        words_flat = attach(self.bitmap_words)
        value_column = attach(self.value_column)
        groups: list[Group] = []
        for spec in self.groups:
            if isinstance(spec, _MaterializedSpec):
                groups.append(MaterializedGroup(spec.name, values_flat[spec.lo : spec.hi]))
            elif isinstance(spec, _IndexedSpec):
                selector = BitVector(
                    words_flat[spec.word_lo : spec.word_hi], spec.length
                )
                groups.append(IndexedGroup(spec.name, selector, value_column))
            elif isinstance(spec, _VirtualSpec):
                groups.append(VirtualGroup(spec.name, spec.dist, spec.size))
            else:  # pragma: no cover - payloads are built by this module only
                raise TypeError(f"unknown shard group spec {type(spec).__name__}")
        return Population(groups=groups, c=self.c, name=self.population_name)


def shareable(population: Population) -> str | None:
    """Why ``population`` cannot cross into worker processes (None = it can).

    The process executor ships buffers via shared memory and rebuilds
    samplers from compact parameter specs; see the module docstring for the
    per-kind rules.  The planner downgrades ``executor="process"`` to the
    thread fan-out when this returns a reason, surfacing it as a caveat.
    """
    from repro.needletail.engine import IndexedGroup, base_bitvector

    for group in population.groups:
        if isinstance(group, MaterializedGroup):
            continue
        if isinstance(group, IndexedGroup):
            if base_bitvector(group._selector) is None:
                return (
                    f"group {group.name!r} uses a selector without flat bitmap "
                    "words, which cannot be placed in shared memory"
                )
            continue
        if isinstance(group, VirtualGroup):
            if not group.dist.fusable:
                return (
                    f"group {group.name!r} is backed by a rejection-sampled "
                    f"distribution ({type(group.dist).__name__}), whose sampler "
                    "state cannot be rebuilt in worker processes"
                )
            continue
        return (
            f"group {group.name!r} has unknown kind {type(group).__name__}, "
            "which the shared-memory transport does not cover"
        )
    return None


def _file_windows(
    chunks: list[np.ndarray],
) -> tuple[FileArrayRef, list[int]] | None:
    """One whole-file :class:`FileArrayRef` + per-chunk element offsets.

    Succeeds only when *every* chunk is a read-only mapped window of the
    same segment file (see :func:`file_backed_ref`) - then one flat mapping
    spanning all windows replaces the concatenate-into-shm copy, and the
    returned offsets index each chunk inside it.  Returns None (caller
    falls back to the shared-memory copy path) otherwise.
    """
    refs = []
    for chunk in chunks:
        ref = file_backed_ref(chunk)
        if ref is None or len(ref.shape) != 1:
            return None
        refs.append(ref)
    if len({ref.path for ref in refs}) != 1 or len({ref.dtype for ref in refs}) != 1:
        return None
    itemsize = np.dtype(refs[0].dtype).itemsize
    base = min(ref.offset for ref in refs)
    end = max(ref.offset + ref.shape[0] * itemsize for ref in refs)
    if any((ref.offset - base) % itemsize for ref in refs):
        return None
    whole = FileArrayRef(
        path=refs[0].path,
        dtype=refs[0].dtype,
        shape=((end - base) // itemsize,),
        offset=base,
    )
    return whole, [(ref.offset - base) // itemsize for ref in refs]


def build_shard_payloads(
    population: Population,
    shard_gids: list[np.ndarray],
    registry: ShmRegistry = REGISTRY,
) -> tuple[list[ShardPayload], list[str]]:
    """Describe a population's buffers for workers, one payload per shard.

    Buffers already backed by read-only mapped segment files (populations
    and indexes re-opened from a :class:`~repro.storage.DurableCatalog`)
    travel as :class:`FileArrayRef` windows - workers map the store's bytes
    directly, no copy, no shared-memory segment.  Everything else is placed
    in shared memory exactly as before.

    Returns ``(payloads, owned_segment_names)``; the caller (the process
    pool) releases each owned name exactly once on shutdown.  Raises
    ``ValueError`` when :func:`shareable` says no.
    """
    from repro.needletail.engine import IndexedGroup, base_bitvector

    reason = shareable(population)
    if reason is not None:
        raise ValueError(f"population is not process-shareable: {reason}")

    owned: list[str] = []
    # The NEEDLETAIL row-store value column is shared by every group of an
    # engine; ship each distinct array once, across all shards.
    column_refs: dict[int, SharedArrayRef | FileArrayRef] = {}

    def share(array: np.ndarray) -> SharedArrayRef:
        ref = registry.share_array(array)
        owned.append(ref.name)
        return ref

    def column_ref(column: np.ndarray) -> SharedArrayRef | FileArrayRef:
        if id(column) not in column_refs:
            values = np.asarray(column, dtype=np.float64)
            column_refs[id(column)] = file_backed_ref(values) or share(values)
        return column_refs[id(column)]

    try:
        payloads = []
        for gids in shard_gids:
            groups = [population.groups[int(g)] for g in gids]
            specs: list = []
            mat_entries: list[tuple[int, np.ndarray]] = []  # (spec index, values)
            word_entries: list[tuple[int, np.ndarray]] = []  # (spec index, words)
            value_ref: SharedArrayRef | FileArrayRef | None = None
            for group in groups:
                if isinstance(group, MaterializedGroup):
                    values = np.asarray(group.values, dtype=np.float64)
                    mat_entries.append((len(specs), values))
                    specs.append(_MaterializedSpec(group.name, 0, values.size))
                elif isinstance(group, IndexedGroup):
                    base = base_bitvector(group._selector)
                    words = np.asarray(base.words)
                    word_entries.append((len(specs), words))
                    specs.append(_IndexedSpec(group.name, 0, words.size, len(base)))
                    ref = column_ref(group._values)
                    if value_ref is not None and ref != value_ref:
                        raise ValueError(
                            "groups of one shard span distinct value columns; "
                            "the process transport shares one column per shard"
                        )
                    value_ref = ref
                else:  # fusable VirtualGroup (shareable() vetted the rest)
                    specs.append(_VirtualSpec(group.name, group.dist, group.size))

            def place(
                entries: list[tuple[int, np.ndarray]],
            ) -> tuple[SharedArrayRef | FileArrayRef | None, list[int]]:
                if not entries:
                    return None, []
                mapped = _file_windows([chunk for _, chunk in entries])
                if mapped is not None:
                    return mapped
                sizes = [chunk.size for _, chunk in entries]
                offsets = np.concatenate([[0], np.cumsum(sizes[:-1])]).astype(int)
                return share(np.concatenate([c for _, c in entries])), list(offsets)

            values_flat, mat_offs = place(mat_entries)
            bitmap_words, word_offs = place(word_entries)
            for (i, values), off in zip(mat_entries, mat_offs):
                spec = specs[i]
                specs[i] = _MaterializedSpec(spec.name, int(off), int(off) + values.size)
            for (i, words), off in zip(word_entries, word_offs):
                spec = specs[i]
                specs[i] = _IndexedSpec(
                    spec.name, int(off), int(off) + words.size, spec.length
                )
            payloads.append(
                ShardPayload(
                    population_name=population.name,
                    c=population.c,
                    groups=tuple(specs),
                    values_flat=values_flat,
                    bitmap_words=bitmap_words,
                    value_column=value_ref,
                )
            )
    except BaseException:
        for name in owned:
            registry.release(name)
        raise
    return payloads, owned
