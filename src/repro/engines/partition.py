"""Group-partitioning utilities for the sharded execution backend.

A *partitioner* assigns every group id of a population to one of N shards.
Both built-ins are deterministic functions of the population alone - no
process-local salt, no RNG - so a partition computed on one machine (or in
one worker) is identical everywhere, which the shard-merge determinism
contract relies on (see DESIGN_PERF.md).

* ``range``  - contiguous, balanced group-id ranges.  The default: preserves
  group order within a shard, so the stable merge is a plain column gather.
* ``hash``   - stable CRC32 of the group *name* modulo N.  Insensitive to
  group-id renumbering across reloads; the shape BlinkDB-style partitioned
  sample stores use for key-addressed shards.

Empty shards are legal (hash partitions of few groups may leave holes);
:class:`~repro.engines.sharded.ShardedEngine` simply skips them.
"""

from __future__ import annotations

import zlib
from typing import Callable, Sequence

import numpy as np

__all__ = ["range_partition", "hash_partition", "partition_groups", "PARTITIONERS"]


def _check_shards(k: int, shards: int) -> int:
    if k < 1:
        raise ValueError(f"need at least one group to partition, got {k}")
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    return int(shards)


def range_partition(k: int, shards: int) -> list[np.ndarray]:
    """Split group ids 0..k-1 into ``shards`` contiguous, balanced ranges.

    The first ``k % shards`` shards receive one extra group.  With
    ``shards > k`` the trailing shards are empty.
    """
    shards = _check_shards(k, shards)
    return [np.asarray(part, dtype=np.int64) for part in np.array_split(np.arange(k), shards)]


def hash_partition(names: Sequence[str], shards: int) -> list[np.ndarray]:
    """Assign each group to shard ``crc32(name) % shards``.

    CRC32 is stable across processes and platforms (unlike ``hash()``, which
    is salted per interpreter), so the assignment is reproducible.
    """
    shards = _check_shards(len(names), shards)
    assignment = np.array(
        [zlib.crc32(str(name).encode("utf-8")) % shards for name in names],
        dtype=np.int64,
    )
    return [np.flatnonzero(assignment == s).astype(np.int64) for s in range(shards)]


PARTITIONERS: dict[str, Callable[..., list[np.ndarray]]] = {
    "range": range_partition,
    "hash": hash_partition,
}


def partition_groups(
    group_names: Sequence[str], shards: int, strategy: str = "range"
) -> list[np.ndarray]:
    """Partition a population's groups by name list and strategy.

    Returns one int64 gid array per shard (possibly empty), covering every
    group exactly once, each array sorted ascending so the per-shard group
    order is a subsequence of the global order (the stable-merge invariant).
    """
    key = strategy.lower()
    if key not in PARTITIONERS:
        raise KeyError(f"unknown partitioner {strategy!r}; known: {sorted(PARTITIONERS)}")
    if key == "range":
        return range_partition(len(group_names), shards)
    return hash_partition(group_names, shards)
