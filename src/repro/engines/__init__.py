"""Sampling engines: the substrate the ordering algorithms draw samples from."""

from repro.engines.base import (
    CostModel,
    EngineRun,
    NullCostModel,
    RunStats,
    SamplingEngine,
)
from repro.engines.memory import InMemoryEngine
from repro.engines.partition import hash_partition, partition_groups, range_partition
from repro.engines.sharded import (
    SHARD_EXECUTORS,
    ProcessShardedRun,
    ShardedEngine,
    ShardedRun,
)

__all__ = [
    "CostModel",
    "EngineRun",
    "NullCostModel",
    "RunStats",
    "SamplingEngine",
    "InMemoryEngine",
    "SHARD_EXECUTORS",
    "ShardedEngine",
    "ShardedRun",
    "ProcessShardedRun",
    "partition_groups",
    "range_partition",
    "hash_partition",
]
