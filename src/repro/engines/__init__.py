"""Sampling engines: the substrate the ordering algorithms draw samples from."""

from repro.engines.base import (
    CostModel,
    EngineRun,
    NullCostModel,
    RunStats,
    SamplingEngine,
)
from repro.engines.memory import InMemoryEngine

__all__ = [
    "CostModel",
    "EngineRun",
    "NullCostModel",
    "RunStats",
    "SamplingEngine",
    "InMemoryEngine",
]
