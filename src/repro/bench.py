"""One-command micro-benchmark export for the perf trajectory.

Runs the micro benchmark suites (``benchmarks/bench_micro_core.py`` and
``benchmarks/bench_micro_bitmap.py``) under pytest-benchmark with the heavy
``bench``-marked cases enabled, then normalizes the raw JSON into
``BENCH_micro.json``: one entry per op with the group count and the median
seconds.  The file is committed per PR so the fused-sampling trajectory is
tracked release over release.

Entry points: ``python -m repro bench-export`` or ``scripts/bench_export.py``.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path

__all__ = ["export_micro", "MICRO_BENCH_FILES"]

MICRO_BENCH_FILES = (
    "benchmarks/bench_micro_core.py",
    "benchmarks/bench_micro_bitmap.py",
    "benchmarks/bench_micro_sharded.py",
    "benchmarks/bench_micro_procpool.py",
    "benchmarks/bench_serve.py",
    "benchmarks/bench_storage.py",
    "benchmarks/bench_streaming.py",
)


def _repo_root() -> Path:
    """The repository root: the directory holding the ``benchmarks`` suite."""
    here = Path(__file__).resolve()
    for candidate in (Path.cwd(), *here.parents):
        if (candidate / "benchmarks" / "bench_micro_core.py").exists():
            return candidate
    raise FileNotFoundError("could not locate the benchmarks/ directory")


def _normalize(raw: dict) -> dict:
    entries = []
    for bench in raw.get("benchmarks", []):
        name = str(bench.get("name", ""))
        op = name[len("test_bench_") :] if name.startswith("test_bench_") else name
        extra = dict(bench.get("extra_info", {}) or {})
        entry = {
            "op": op,
            "k": extra.pop("k", None),
            "median_seconds": bench["stats"]["median"],
        }
        # Benchmarks may attach derived metrics (e.g. the sharded scaling
        # bench's per-shard critical-path seconds); carry them verbatim.
        entry.update(extra)
        entries.append(entry)
    entries.sort(key=lambda e: e["op"])
    machine = raw.get("machine_info", {}) or {}
    return {
        "suite": "micro",
        "machine": machine.get("machine"),
        "python": machine.get("python_version"),
        "entries": entries,
    }


def export_micro(
    output: str | None = None,
    pytest_args: tuple[str, ...] = (),
    smoke: bool = False,
) -> Path:
    """Run the micro suite and write the normalized trajectory JSON.

    ``output=None`` resolves to ``BENCH_micro.json``, or
    ``BENCH_micro.smoke.json`` in smoke mode so a sanity run never clobbers
    the committed trajectory.

    ``smoke=True`` is the CI sanity mode: the heavy ``bench``-marked cases
    stay deselected (REPRO_RUN_BENCH is not set) and rounds are capped, so
    the whole run finishes in seconds.  It exists to prove the bench pipeline
    and the fast micro ops still work on every push - its numbers feed
    ``scripts/check_bench.py`` (overlapping ops only), never the committed
    BENCH_micro.json.

    Returns the path of the written file.  Raises ``RuntimeError`` if the
    benchmark run fails.
    """
    if output is None:
        output = "BENCH_micro.smoke.json" if smoke else "BENCH_micro.json"
    root = _repo_root()
    env = dict(os.environ)
    if smoke:
        env.pop("REPRO_RUN_BENCH", None)
    else:
        env["REPRO_RUN_BENCH"] = "1"
    src = str(root / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    smoke_args = ("--benchmark-max-time=0.05", "--benchmark-min-rounds=1") if smoke else ()
    with tempfile.TemporaryDirectory() as tmp:
        raw_path = Path(tmp) / "bench_raw.json"
        cmd = [
            sys.executable,
            "-m",
            "pytest",
            *[str(root / f) for f in MICRO_BENCH_FILES],
            "-q",
            f"--benchmark-json={raw_path}",
            *smoke_args,
            *pytest_args,
        ]
        proc = subprocess.run(cmd, cwd=root, env=env)
        if proc.returncode != 0:
            raise RuntimeError(f"benchmark run failed with exit code {proc.returncode}")
        raw = json.loads(raw_path.read_text())
    out_path = Path(output)
    if not out_path.is_absolute():
        out_path = root / out_path
    out_path.write_text(json.dumps(_normalize(raw), indent=2) + "\n")
    return out_path
