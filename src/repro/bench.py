"""One-command micro-benchmark export for the perf trajectory.

Runs the micro benchmark suites (``benchmarks/bench_micro_core.py`` and
``benchmarks/bench_micro_bitmap.py``) under pytest-benchmark with the heavy
``bench``-marked cases enabled, then normalizes the raw JSON into
``BENCH_micro.json``: one entry per op with the group count and the median
seconds.  The file is committed per PR so the fused-sampling trajectory is
tracked release over release.

Entry points: ``python -m repro bench-export`` or ``scripts/bench_export.py``.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path

__all__ = ["export_micro", "MICRO_BENCH_FILES"]

MICRO_BENCH_FILES = (
    "benchmarks/bench_micro_core.py",
    "benchmarks/bench_micro_bitmap.py",
)


def _repo_root() -> Path:
    """The repository root: the directory holding the ``benchmarks`` suite."""
    here = Path(__file__).resolve()
    for candidate in (Path.cwd(), *here.parents):
        if (candidate / "benchmarks" / "bench_micro_core.py").exists():
            return candidate
    raise FileNotFoundError("could not locate the benchmarks/ directory")


def _normalize(raw: dict) -> dict:
    entries = []
    for bench in raw.get("benchmarks", []):
        name = str(bench.get("name", ""))
        op = name[len("test_bench_") :] if name.startswith("test_bench_") else name
        extra = bench.get("extra_info", {}) or {}
        entries.append(
            {
                "op": op,
                "k": extra.get("k"),
                "median_seconds": bench["stats"]["median"],
            }
        )
    entries.sort(key=lambda e: e["op"])
    machine = raw.get("machine_info", {}) or {}
    return {
        "suite": "micro",
        "machine": machine.get("machine"),
        "python": machine.get("python_version"),
        "entries": entries,
    }


def export_micro(output: str = "BENCH_micro.json", pytest_args: tuple[str, ...] = ()) -> Path:
    """Run the micro suite and write the normalized trajectory JSON.

    Returns the path of the written file.  Raises ``RuntimeError`` if the
    benchmark run fails.
    """
    root = _repo_root()
    env = dict(os.environ)
    env["REPRO_RUN_BENCH"] = "1"
    src = str(root / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    with tempfile.TemporaryDirectory() as tmp:
        raw_path = Path(tmp) / "bench_raw.json"
        cmd = [
            sys.executable,
            "-m",
            "pytest",
            *[str(root / f) for f in MICRO_BENCH_FILES],
            "-q",
            f"--benchmark-json={raw_path}",
            *pytest_args,
        ]
        proc = subprocess.run(cmd, cwd=root, env=env)
        if proc.returncode != 0:
            raise RuntimeError(f"benchmark run failed with exit code {proc.returncode}")
        raw = json.loads(raw_path.read_text())
    out_path = Path(output)
    if not out_path.is_absolute():
        out_path = root / out_path
    out_path.write_text(json.dumps(_normalize(raw), indent=2) + "\n")
    return out_path
