"""Reference (one-sample-at-a-time) IFOCUS loop with pluggable policies.

This is the literal transcription of Algorithm 1: a Python loop over rounds,
one draw per active group per round.  It exists for three reasons:

1. **Ground truth** - the vectorized executor in :mod:`repro.core.ifocus`
   must produce exactly the same estimates, removal rounds and sample counts;
   the test suite asserts this equivalence on randomized instances.
2. **Extensions** - the Section 6 variants (trends, top-t, mistakes, values,
   partial results) only change *when a group may leave the active set* or
   *when the loop stops*.  They plug into this loop via the ``policy``,
   ``terminate_when``, ``min_half_width`` and ``on_finalize`` hooks rather
   than re-implementing the algorithm.
3. **Alternative (b)** - Section 3.1 discusses letting inactive groups
   re-activate when another estimate drifts into them; that variant
   (``reactivation=True``) loses the optimality guarantee and exists here for
   the ablation benchmark.

Unlike the batched executor, this loop maintains *per-group* round counts and
half-widths, which is what reactivation and the extension policies need; in
the default configuration every active group has the same count, so the two
implementations coincide.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro._util import check_nonnegative, check_probability
from repro.core.confidence import EpsilonSchedule
from repro.core.intervals import separated_general
from repro.core.types import GroupOutcome, OrderingResult, RoundSnapshot, Trace
from repro.engines.base import SamplingEngine
from repro.resilience.deadline import Deadline

__all__ = ["LoopContext", "default_policy", "run_ifocus_reference"]


@dataclass
class LoopContext:
    """Snapshot of the loop state passed to policies and hooks.

    Attributes:
        estimates: current estimates for all k groups (frozen for inactive).
        half_widths: current interval half-widths (frozen for inactive,
            0.0 for exhausted groups).
        active: boolean mask of active groups.
        counts: per-group sample counts m_i.
        round_index: the global round number (max of the counts).
        sizes: group sizes n_i.
        inactive_order: indices finalized so far, in order.
    """

    estimates: np.ndarray
    half_widths: np.ndarray
    active: np.ndarray
    counts: np.ndarray
    round_index: int
    sizes: np.ndarray
    inactive_order: list[int] = field(default_factory=list)

    @property
    def k(self) -> int:
        return self.estimates.shape[0]

    def resolved_pair_fraction(self) -> float:
        """Fraction of group pairs with both endpoints inactive.

        Pairs of inactive groups are exactly the pairs whose relative order
        the algorithm has committed to - the quantity the "allowing mistakes"
        variant (Problem 5) tracks.
        """
        k = self.k
        if k < 2:
            return 1.0
        inactive = int((~self.active).sum())
        return (inactive * (inactive - 1)) / (k * (k - 1))


PolicyFn = Callable[[LoopContext], np.ndarray]


def default_policy(ctx: LoopContext) -> np.ndarray:
    """Algorithm 1's rule: an active group may leave the active set iff its
    interval is disjoint from every *other active* group's interval."""
    out = np.zeros(ctx.k, dtype=bool)
    idx = np.flatnonzero(ctx.active)
    if idx.size == 0:
        return out
    sep = separated_general(ctx.estimates[idx], ctx.half_widths[idx])
    out[idx] = sep
    return out


def run_ifocus_reference(
    engine: SamplingEngine,
    *,
    delta: float = 0.05,
    resolution: float = 0.0,
    kappa: float = 1.0,
    heuristic_factor: float = 1.0,
    without_replacement: bool = True,
    seed: int | np.random.Generator | None = None,
    trace_every: int = 0,
    max_rounds: int | None = None,
    reactivation: bool = False,
    policy: PolicyFn | None = None,
    terminate_when: Callable[[LoopContext], bool] | None = None,
    min_half_width: float | None = None,
    on_finalize: Callable[[int, GroupOutcome], None] | None = None,
    algorithm_name: str | None = None,
    deadline: Deadline | None = None,
) -> OrderingResult:
    """Run the reference IFOCUS loop.

    See :func:`repro.core.ifocus.run_ifocus` for the shared parameters.
    Additional hooks:

    Args:
        reactivation: alternative (b) of Section 3.1 - inactive,
            non-exhausted groups whose frozen interval overlaps an active
            interval re-enter the active set.
        policy: replaces the "disjoint from other active intervals" rule;
            receives a :class:`LoopContext`, returns a boolean mask of active
            groups allowed to leave the active set this round.
        terminate_when: extra stopping predicate checked once per round after
            removals (e.g. the mistakes variant's resolved-pair fraction).
        min_half_width: groups may not leave the active set while their
            half-width exceeds this (the approximate-values variant uses d/2).
        on_finalize: callback invoked with (gid, outcome) the moment a group
            is finalized - this is the partial-results stream of Problem 7.
        algorithm_name: override the result's algorithm label.
        deadline: optional time budget / cancel token, polled once per
            round; on expiry remaining groups are finalized at their
            current estimates and ``params["deadline_exceeded"]`` is set.
    """
    check_probability(delta, "delta")
    check_nonnegative(resolution, "resolution")
    if policy is None:
        policy = default_policy
    run = engine.open_run(seed, without_replacement=without_replacement)
    k = run.k
    sizes = run.sizes()
    schedule = EpsilonSchedule(k, delta, c=run.c, kappa=kappa, heuristic_factor=heuristic_factor)

    sums = np.zeros(k, dtype=np.float64)
    counts = np.zeros(k, dtype=np.int64)
    estimates = np.zeros(k, dtype=np.float64)
    half_widths = np.full(k, np.inf)
    active = np.ones(k, dtype=bool)
    exhausted = np.zeros(k, dtype=bool)
    finalized_round = np.zeros(k, dtype=np.int64)
    inactive_order: list[int] = []
    trace = Trace(every=trace_every) if trace_every > 0 else None
    names = run.group_names()

    def current_n_max() -> float | None:
        if not without_replacement:
            return None
        idx = np.flatnonzero(active)
        if idx.size == 0:
            return None
        return float(sizes[idx].max())

    def make_ctx(round_index: int) -> LoopContext:
        return LoopContext(
            estimates=estimates,
            half_widths=half_widths,
            active=active,
            counts=counts,
            round_index=round_index,
            sizes=sizes,
            inactive_order=inactive_order,
        )

    def finalize(gid: int, width: float, round_m: int, is_exhausted: bool) -> None:
        active[gid] = False
        half_widths[gid] = width
        finalized_round[gid] = round_m
        exhausted[gid] = is_exhausted
        inactive_order.append(gid)
        if is_exhausted:
            estimates[gid] = run.exact_mean(gid)
        if on_finalize is not None:
            on_finalize(
                gid,
                GroupOutcome(
                    index=gid,
                    name=names[gid],
                    estimate=float(estimates[gid]),
                    samples=int(counts[gid]),
                    half_width=float(width),
                    exhausted=is_exhausted,
                    finalized_round=round_m,
                ),
            )

    # Round 1: one sample per group.
    for gid in range(k):
        value = float(run.draw(gid, 1)[0])
        sums[gid] = value
        estimates[gid] = value
        counts[gid] = 1
        run.charge(gid, 1)
    m = 1
    n_max = current_n_max()
    half_widths[:] = float(schedule(1.0, n_max))
    if trace is not None:
        trace.append(
            RoundSnapshot(
                round_index=1,
                cumulative_samples=int(counts.sum()),
                active=tuple(range(k)),
                estimates=estimates.copy(),
                epsilon=float(half_widths[0]),
            )
        )

    truncated = False
    deadline_exceeded = False
    while active.any():
        if max_rounds is not None and m >= max_rounds:
            truncated = True
            for gid in np.flatnonzero(active):
                finalize(int(gid), float(half_widths[gid]), m, False)
            break
        if deadline is not None and deadline.check():
            deadline_exceeded = True
            for gid in np.flatnonzero(active):
                finalize(int(gid), float(half_widths[gid]), m, False)
            break

        # Exhaustion: a fully-read group is finalized at its exact mean.
        if without_replacement:
            for gid in np.flatnonzero(active & (sizes <= counts)):
                finalize(int(gid), 0.0, m, True)
            if not active.any():
                break

        m += 1
        n_max = current_n_max()
        for gid in np.flatnonzero(active):
            value = float(run.draw(int(gid), 1)[0])
            sums[gid] += value
            counts[gid] += 1
            estimates[gid] = sums[gid] / counts[gid]
            half_widths[gid] = float(schedule(float(counts[gid]), n_max))
            run.charge(int(gid), 1)

        if reactivation:
            idx_active = np.flatnonzero(active)
            if idx_active.size:
                for gid in np.flatnonzero(~active & ~exhausted):
                    lo = estimates[gid] - half_widths[gid]
                    hi = estimates[gid] + half_widths[gid]
                    a_lo = estimates[idx_active] - half_widths[idx_active]
                    a_hi = estimates[idx_active] + half_widths[idx_active]
                    if np.any((lo <= a_hi) & (a_lo <= hi)):
                        active[gid] = True
                        inactive_order.remove(int(gid))

        ctx = make_ctx(m)
        active_eps = half_widths[active]
        # Resolution relaxation (Problem 2): stop once eps < r/4.
        if resolution > 0.0 and active_eps.size and float(active_eps.max()) < resolution / 4.0:
            for gid in np.flatnonzero(active):
                finalize(int(gid), float(half_widths[gid]), m, False)
            _trace_round(trace, m, counts, active, estimates, half_widths)
            break

        may_leave = policy(ctx) & active
        if min_half_width is not None:
            may_leave &= half_widths < min_half_width
        # Exhausted groups are zero-width obstacles: a group may not leave
        # while its interval still covers a frozen exact mean (mirrors the
        # batched executor; keeps ordering sound vs fully-read groups).
        frozen = estimates[exhausted]
        if frozen.size:
            for gid in np.flatnonzero(may_leave):
                if np.any(np.abs(estimates[gid] - frozen) <= half_widths[gid]):
                    may_leave[gid] = False
        for gid in np.flatnonzero(may_leave):
            finalize(int(gid), float(half_widths[gid]), m, False)

        _trace_round(trace, m, counts, active, estimates, half_widths)

        if terminate_when is not None and terminate_when(make_ctx(m)):
            for gid in np.flatnonzero(active):
                finalize(int(gid), float(half_widths[gid]), m, False)
            break

    groups = [
        GroupOutcome(
            index=i,
            name=names[i],
            estimate=float(estimates[i]),
            samples=int(counts[i]),
            half_width=float(half_widths[i]) if not exhausted[i] else 0.0,
            exhausted=bool(exhausted[i]),
            finalized_round=int(finalized_round[i]),
        )
        for i in range(k)
    ]
    return OrderingResult(
        algorithm=algorithm_name or ("ifocusr-reference" if resolution > 0 else "ifocus-reference"),
        estimates=estimates.copy(),
        samples_per_group=counts.copy(),
        rounds=m,
        groups=groups,
        inactive_order=inactive_order,
        trace=trace,
        params={
            "delta": delta,
            "resolution": resolution,
            "kappa": kappa,
            "heuristic_factor": heuristic_factor,
            "without_replacement": without_replacement,
            "c": run.c,
            "truncated": truncated,
            "deadline_exceeded": deadline_exceeded,
            "reactivation": reactivation,
        },
        stats=run.stats,
    )


def _trace_round(
    trace: Trace | None,
    m: int,
    counts: np.ndarray,
    active: np.ndarray,
    estimates: np.ndarray,
    half_widths: np.ndarray,
) -> None:
    if trace is None or m % trace.every != 0:
        return
    idx = np.flatnonzero(active)
    eps = float(half_widths[idx].max()) if idx.size else 0.0
    trace.append(
        RoundSnapshot(
            round_index=m,
            cumulative_samples=int(counts.sum()),
            active=tuple(int(g) for g in idx),
            estimates=estimates.copy(),
            epsilon=eps,
        )
    )
