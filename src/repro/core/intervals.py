"""Confidence-interval overlap tests used by the active-set bookkeeping.

A group is *active* while its confidence interval intersects the interval of
some other active group; it is removed from the active set as soon as its
interval is disjoint from the union of the other active intervals (Alg. 1
lines 10-12).

Two regimes:

* equal half-widths (the IFOCUS common case: one shared eps per round) - a
  group is separated iff its gap to the *nearest* other active estimate
  exceeds 2*eps, so a sorted adjacent-gap sweep is exact and O(k log k);
* heterogeneous half-widths (IREFINE, exhausted zero-width groups, SUM
  variants) - we use the O(k^2) pairwise test, which is fine for the paper's
  regime of k <= 100.

Both are provided in single-round and batched (rounds x groups) forms; the
batched forms power the vectorized executor.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "separated_equal_width",
    "separated_general",
    "separated_equal_width_batch",
    "first_event_row",
    "first_resolution_row",
    "pairwise_overlap_matrix",
]


def separated_equal_width(centers: np.ndarray, eps: float) -> np.ndarray:
    """Boolean mask: which intervals [c_i - eps, c_i + eps] touch no other.

    All intervals share the same half-width ``eps``.  An interval is
    "separated" iff its distance to the nearest other center exceeds 2*eps.
    A single interval is trivially separated.
    """
    centers = np.asarray(centers, dtype=np.float64)
    k = centers.shape[0]
    if k <= 1:
        return np.ones(k, dtype=bool)
    order = np.argsort(centers, kind="stable")
    sorted_c = centers[order]
    gaps = np.diff(sorted_c)
    ok_left = np.empty(k, dtype=bool)
    ok_right = np.empty(k, dtype=bool)
    ok_left[0] = True
    ok_left[1:] = gaps > 2.0 * eps
    ok_right[-1] = True
    ok_right[:-1] = gaps > 2.0 * eps
    sep_sorted = ok_left & ok_right
    out = np.empty(k, dtype=bool)
    out[order] = sep_sorted
    return out


def separated_general(centers: np.ndarray, halfwidths: np.ndarray) -> np.ndarray:
    """Boolean mask of separated intervals with per-interval half-widths.

    Interval i is separated iff |c_i - c_j| > w_i + w_j for every j != i.
    O(k^2), intended for k <= a few hundred.
    """
    centers = np.asarray(centers, dtype=np.float64)
    halfwidths = np.asarray(halfwidths, dtype=np.float64)
    k = centers.shape[0]
    if k <= 1:
        return np.ones(k, dtype=bool)
    dist = np.abs(centers[:, None] - centers[None, :])
    reach = halfwidths[:, None] + halfwidths[None, :]
    overlap = dist <= reach
    np.fill_diagonal(overlap, False)
    return ~overlap.any(axis=1)


def separated_equal_width_batch(estimates: np.ndarray, eps: np.ndarray) -> np.ndarray:
    """Batched :func:`separated_equal_width` over rounds.

    Args:
        estimates: shape (B, k) - per-round estimates of the active groups.
        eps: shape (B,) - the shared half-width at each round.

    Returns:
        Boolean array of shape (B, k): entry [b, i] is True iff interval i is
        disjoint from all other intervals at round b.
    """
    estimates = np.asarray(estimates, dtype=np.float64)
    eps = np.asarray(eps, dtype=np.float64)
    if estimates.ndim != 2:
        raise ValueError(f"estimates must be 2-D, got shape {estimates.shape}")
    b, k = estimates.shape
    if eps.shape != (b,):
        raise ValueError(f"eps must have shape ({b},), got {eps.shape}")
    if k <= 1:
        return np.ones((b, k), dtype=bool)
    order = np.argsort(estimates, axis=1, kind="stable")
    sorted_e = np.take_along_axis(estimates, order, axis=1)
    gaps = np.diff(sorted_e, axis=1)  # (B, k-1)
    wide = gaps > (2.0 * eps)[:, None]
    ok_left = np.concatenate([np.ones((b, 1), dtype=bool), wide], axis=1)
    ok_right = np.concatenate([wide, np.ones((b, 1), dtype=bool)], axis=1)
    sep_sorted = ok_left & ok_right
    out = np.empty((b, k), dtype=bool)
    np.put_along_axis(out, order, sep_sorted, axis=1)
    return out


def first_event_row(
    estimates: np.ndarray,
    eps: np.ndarray,
    obstacles: np.ndarray | None = None,
    require_all: bool = False,
    start_window: int = 64,
) -> tuple[int | None, np.ndarray | None]:
    """Earliest row with a separation event, scanning in galloping windows.

    The batched executors only ever act on the *first* round where a group's
    interval becomes disjoint (IFOCUS) or where *every* interval is disjoint
    (ROUNDROBIN); testing the whole pre-drawn batch up front wastes
    O(batch x k) sort work every time an event lands early.  This helper
    evaluates :func:`separated_equal_width_batch` over windows that double in
    size, so finding an event at row r costs O(r k log k) instead of
    O(B k log k), while an event-free batch costs one extra partial window.

    Args:
        estimates: shape (B, k) per-round estimates.
        eps: shape (B,) shared half-width per round.
        obstacles: optional frozen exact means (zero-width intervals); a
            group only counts as separated at a round if it also clears
            every obstacle by more than eps.
        require_all: False - first row where *any* group is separated
            (IFOCUS removal); True - first row where *all* groups are
            (ROUNDROBIN termination).
        start_window: initial window size (doubles each miss).

    Returns:
        ``(row, mask)`` - the first event row and the per-group separation
        mask at that row - or ``(None, None)`` if the batch has no event.
    """
    estimates = np.asarray(estimates, dtype=np.float64)
    eps = np.asarray(eps, dtype=np.float64)
    b, k = estimates.shape
    obs = None
    if obstacles is not None and obstacles.size:
        obs = np.sort(np.asarray(obstacles, dtype=np.float64))
    row = 0
    window = max(int(start_window), 1)
    while row < b:
        hi = min(row + window, b)
        # Existence screen in sorted space: ``np.sort`` is substantially
        # cheaper than the argsort + inverse-permutation dance, and the
        # "is any/every interval separated" question only needs the sorted
        # values - the group identities are recovered below, at one row.
        seg = np.sort(estimates[row:hi], axis=1)
        eps_seg = eps[row:hi]
        ok = np.ones((hi - row, k), dtype=bool)
        if k > 1:
            wide = (seg[:, 1:] - seg[:, :-1]) > (2.0 * eps_seg)[:, None]
            ok[:, 1:] &= wide
            ok[:, :-1] &= wide
        if obs is not None:
            ok &= _obstacle_clearance(seg, obs) > eps_seg[:, None]
        hits = np.flatnonzero(ok.all(axis=1) if require_all else ok.any(axis=1))
        if hits.size:
            event = row + int(hits[0])
            # Group-order mask for the event row only.
            mask = separated_equal_width(estimates[event], float(eps[event]))
            if obs is not None:
                mask &= _obstacle_clearance(estimates[event], obs) > eps[event]
            return event, mask
        row = hi
        window *= 2
    return None, None


def first_resolution_row(
    eps: np.ndarray, resolution: float, start: int = 0
) -> int | None:
    """First row at or after ``start`` where eps < r/4 (IFOCUS-R stop rule).

    Shared by the batched executors so the r/4 threshold semantics live in
    one place.  Returns ``None`` when the resolution relaxation is off or
    never triggers within the batch.
    """
    if resolution <= 0.0:
        return None
    hits = np.flatnonzero(eps[start:] < resolution / 4.0)
    return int(hits[0]) + start if hits.size else None


def _obstacle_clearance(values: np.ndarray, sorted_obstacles: np.ndarray) -> np.ndarray:
    """Distance from each value to its nearest obstacle (obstacles sorted).

    One searchsorted instead of a Python loop over obstacles - the loop is
    O(#obstacles) vector passes, which bites once exhausted groups pile up
    on skewed populations.
    """
    pos = np.searchsorted(sorted_obstacles, values)
    left = np.where(
        pos > 0, values - sorted_obstacles[np.maximum(pos - 1, 0)], np.inf
    )
    last = sorted_obstacles.shape[0] - 1
    right = np.where(
        pos <= last, sorted_obstacles[np.minimum(pos, last)] - values, np.inf
    )
    return np.minimum(left, right)


def pairwise_overlap_matrix(centers: np.ndarray, halfwidths: np.ndarray) -> np.ndarray:
    """Symmetric boolean matrix: which interval pairs intersect (diag False)."""
    centers = np.asarray(centers, dtype=np.float64)
    halfwidths = np.asarray(halfwidths, dtype=np.float64)
    dist = np.abs(centers[:, None] - centers[None, :])
    reach = halfwidths[:, None] + halfwidths[None, :]
    overlap = dist <= reach
    np.fill_diagonal(overlap, False)
    return overlap
