"""Algorithm registry: run any of the paper's six algorithms by name.

The experiment harness and the examples refer to algorithms by the names the
paper uses in its figures: ``ifocus``, ``ifocusr``, ``irefine``, ``irefiner``,
``roundrobin``, ``roundrobinr``, plus the ``scan`` baseline.  The "-r"
variants are the same algorithms with the visual-resolution relaxation
enabled, so they *require* a positive ``resolution`` argument.
"""

from __future__ import annotations

from typing import Callable

from repro.core.ifocus import _run_ifocus
from repro.core.irefine import run_irefine
from repro.core.roundrobin import run_roundrobin
from repro.core.scan import run_scan
from repro.core.types import OrderingResult
from repro.engines.base import SamplingEngine

__all__ = ["ALGORITHMS", "RESOLUTION_VARIANTS", "run_algorithm", "algorithm_names"]

_RunnerFn = Callable[..., OrderingResult]

ALGORITHMS: dict[str, _RunnerFn] = {
    "ifocus": _run_ifocus,
    "ifocusr": _run_ifocus,
    "irefine": run_irefine,
    "irefiner": run_irefine,
    "roundrobin": run_roundrobin,
    "roundrobinr": run_roundrobin,
    "scan": run_scan,
}

RESOLUTION_VARIANTS = frozenset({"ifocusr", "irefiner", "roundrobinr"})

_NO_RESOLUTION = frozenset({"ifocus", "irefine", "roundrobin", "scan"})


def algorithm_names(include_scan: bool = False) -> list[str]:
    """The six sampling algorithm names in the paper's plotting order."""
    names = ["ifocus", "ifocusr", "irefine", "irefiner", "roundrobin", "roundrobinr"]
    if include_scan:
        names.append("scan")
    return names


def run_algorithm(
    name: str,
    engine: SamplingEngine,
    *,
    resolution: float = 0.0,
    **kwargs,
) -> OrderingResult:
    """Run the algorithm called ``name`` on ``engine``.

    Args:
        name: one of :func:`algorithm_names` plus "scan".
        engine: the sampling engine.
        resolution: minimal resolution r; required > 0 for the "-r"
            variants, and forced to 0 for the plain variants so figure
            sweeps can pass one value for all six algorithms.
        **kwargs: forwarded to the algorithm (delta, seed, trace_every, ...).
    """
    key = name.lower()
    if key not in ALGORITHMS:
        raise KeyError(f"unknown algorithm {name!r}; known: {sorted(ALGORITHMS)}")
    if key in RESOLUTION_VARIANTS:
        if resolution <= 0:
            raise ValueError(f"{name} requires resolution > 0")
    else:
        resolution = 0.0
    runner = ALGORITHMS[key]
    if key == "scan":
        return runner(engine, **kwargs)
    return runner(engine, resolution=resolution, **kwargs)
