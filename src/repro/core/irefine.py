"""IREFINE (Algorithms 2 and 3) - the aggressive interval-halving variant.

IREFINE also maintains confidence intervals and an active set, but instead of
one sample per round it *halves* each active group's interval every
iteration, drawing a fresh Chernoff-Hoeffding batch of
ceil(c^2/(2 eps^2) ln(2/delta_i)) samples (ESTIMATEMEAN, Algorithm 2).
Because each refinement discards the previous samples and the per-iteration
cost quadruples, IREFINE's sample complexity carries an extra log(1/eta)
factor (Theorem 3.10) and it is not optimal - the paper uses it as the
"aggressive" comparison point between ROUNDROBIN and IFOCUS.

Deviations from the paper's pseudocode, both noted in DESIGN.md:

* Algorithm 3 line 3 initializes delta_i = 1/(2k), which drops the
  user-supplied delta; we use delta/(2k) so the geometric halving unions to
  a total failure probability <= delta (as Theorem 3.10 requires).
* The active flags are recomputed from a snapshot after all active groups
  have been refreshed (the pseudocode interleaves estimate updates and
  overlap checks inside one loop, making the result order-dependent).

A group whose next ESTIMATEMEAN call would need at least n_i samples is
resolved exactly by scanning the group (cost n_i), mirroring the paper's
observation that hard groups may be read in full.
"""

from __future__ import annotations

import numpy as np

from repro._util import check_nonnegative, check_probability
from repro.core.confidence import chernoff_sample_size
from repro.core.intervals import pairwise_overlap_matrix
from repro.core.types import GroupOutcome, OrderingResult
from repro.engines.base import SamplingEngine
from repro.resilience.deadline import Deadline

__all__ = ["run_irefine"]


def run_irefine(
    engine: SamplingEngine,
    *,
    delta: float = 0.05,
    resolution: float = 0.0,
    seed: int | np.random.Generator | None = None,
    max_iterations: int = 64,
    deadline: Deadline | None = None,
) -> OrderingResult:
    """Run IREFINE (or IREFINE-R when ``resolution`` > 0).

    Args:
        engine: sampling engine over the population.
        delta: overall failure probability.
        resolution: minimal resolution r; a group stops refining once its
            half-width drops below r/4 (0 disables).
        seed: RNG seed for the sampling streams.
        max_iterations: safety cap on halving iterations (eps shrinks by 2^64
            over the default cap - far beyond any realistic instance).
        deadline: optional time budget / cancel token, polled once per
            halving iteration; on expiry remaining active groups keep
            their current (eps, estimate) and
            ``params["deadline_exceeded"]`` is set.

    Returns:
        An :class:`~repro.core.types.OrderingResult`.
    """
    check_probability(delta, "delta")
    check_nonnegative(resolution, "resolution")
    variant = "irefiner" if resolution > 0 else "irefine"
    # ESTIMATEMEAN draws independent uniform samples (Lemma 4) - replacement.
    run = engine.open_run(seed, without_replacement=False)
    k = run.k
    c = run.c
    sizes = run.sizes()
    names = run.group_names()

    eps = np.full(k, c / 2.0)
    deltas = np.full(k, delta / (2.0 * k))
    estimates = np.full(k, c / 2.0)
    samples = np.zeros(k, dtype=np.int64)
    active = np.ones(k, dtype=bool)
    exhausted = np.zeros(k, dtype=bool)
    finalized_iter = np.zeros(k, dtype=np.int64)
    inactive_order: list[int] = []

    def finalize(gid: int, iteration: int, is_exhausted: bool) -> None:
        active[gid] = False
        exhausted[gid] = is_exhausted
        finalized_iter[gid] = iteration
        inactive_order.append(gid)

    iteration = 0
    truncated = False
    deadline_exceeded = False
    while active.any():
        iteration += 1
        if iteration > max_iterations:
            truncated = True
            for gid in np.flatnonzero(active):
                finalize(int(gid), iteration - 1, False)
            break
        if deadline is not None and deadline.check():
            deadline_exceeded = True
            for gid in np.flatnonzero(active):
                finalize(int(gid), iteration - 1, False)
            break

        # Every group active at iteration t has halved in lockstep since
        # iteration 1, so all share eps = c/2^t and delta_i = delta/(2k 2^t):
        # one Chernoff sample size serves the whole active set and the
        # refresh is a single fused block draw instead of one call per group.
        active_idx = np.flatnonzero(active)
        eps[active_idx] /= 2.0
        deltas[active_idx] /= 2.0
        gid0 = int(active_idx[0])
        need = chernoff_sample_size(float(eps[gid0]), float(deltas[gid0]), c)

        exhaust = active_idx[need >= sizes[active_idx]]
        for gid in exhaust:
            # Cheaper to read the group in full: exact mean, zero width.
            gid = int(gid)
            estimates[gid] = run.exact_mean(gid)
            eps[gid] = 0.0
            samples[gid] += int(sizes[gid])
            run.charge(gid, int(sizes[gid]))
            finalize(gid, iteration, True)

        refresh = active_idx[need < sizes[active_idx]]
        if refresh.size:
            block = run.draw_block(refresh, need)
            # Contiguous per-group rows keep the mean's pairwise summation
            # bit-identical to the per-group 1-D ``block.mean()`` this
            # replaced (a strided axis-0 reduction accumulates differently).
            estimates[refresh] = np.ascontiguousarray(block.T).mean(axis=1)
            samples[refresh] += need
            run.charge_block(refresh, need)

        # Snapshot overlap check over all k intervals (frozen ones included).
        overlap = pairwise_overlap_matrix(estimates, eps)
        for gid in np.flatnonzero(active):
            gid = int(gid)
            if resolution > 0.0 and eps[gid] < resolution / 4.0:
                finalize(gid, iteration, False)
            elif not overlap[gid].any():
                finalize(gid, iteration, False)

    groups = [
        GroupOutcome(
            index=i,
            name=names[i],
            estimate=float(estimates[i]),
            samples=int(samples[i]),
            half_width=float(eps[i]),
            exhausted=bool(exhausted[i]),
            finalized_round=int(finalized_iter[i]),
        )
        for i in range(k)
    ]
    return OrderingResult(
        algorithm=variant,
        estimates=estimates.copy(),
        samples_per_group=samples.copy(),
        rounds=iteration,
        groups=groups,
        inactive_order=inactive_order,
        trace=None,
        params={
            "delta": delta,
            "resolution": resolution,
            "c": c,
            "truncated": truncated,
            "deadline_exceeded": deadline_exceeded,
        },
        stats=run.stats,
    )
