"""SCAN - the exact full-scan baseline (Section 5.1).

SCAN sequentially reads every record, maintaining per-group running sums in a
hash map, and returns exact group means.  It is what a conventional system
(e.g. PostgreSQL) does for the visualization query, and it anchors the
runtime comparisons of Fig. 4 and the paper's headline 1000x claim.  Its
simulated cost is linear: bytes/bandwidth of sequential I/O plus one hash
probe + update per record of CPU (the paper measures ~800 MB/s and ~10M
probes/s; see :mod:`repro.needletail.cost`).
"""

from __future__ import annotations

import numpy as np

from repro.core.types import GroupOutcome, OrderingResult
from repro.engines.base import SamplingEngine

__all__ = ["run_scan"]


def run_scan(engine: SamplingEngine, **_ignored) -> OrderingResult:
    """Compute exact group means by scanning the entire dataset.

    Extra keyword arguments (delta, seed, ...) are accepted and ignored so
    SCAN is call-compatible with the sampling algorithms in the registry.
    """
    means, stats = engine.scan_means()
    sizes = engine.population.sizes()
    names = engine.population.group_names
    groups = [
        GroupOutcome(
            index=i,
            name=names[i],
            estimate=float(means[i]),
            samples=int(sizes[i]),
            half_width=0.0,
            exhausted=True,
            finalized_round=int(sizes[i]),
        )
        for i in range(engine.k)
    ]
    return OrderingResult(
        algorithm="scan",
        estimates=means.copy(),
        samples_per_group=sizes.copy(),
        rounds=int(sizes.max()),
        groups=groups,
        inactive_order=list(range(engine.k)),
        trace=None,
        params={"exact": True},
        stats=stats,
    )
