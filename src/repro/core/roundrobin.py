"""ROUNDROBIN - the conventional stratified-sampling baseline (Section 5.1).

Round-robin stratified sampling is what online aggregation systems use: one
extra sample from *every* group per round.  The paper's baseline adds the
same termination test IFOCUS uses, so it carries the identical 1 - delta
ordering guarantee - it just keeps sampling groups whose intervals are
already separated, which is exactly the work IFOCUS avoids.

ROUNDROBIN-R (``resolution`` > 0) additionally stops once eps < r/4, matching
IFOCUS-R's relaxation.

Implementation notes: the executor is batched like
:mod:`repro.core.ifocus`; the only structural difference is that nothing
leaves the sampling set before global termination, so a batch ends at the
first round where *all* intervals are pairwise disjoint.  Groups sampled to
exhaustion (m = n_i under without-replacement sampling) freeze at their exact
mean with a zero-width interval; remaining groups must clear those frozen
points by more than eps before the algorithm can stop.
"""

from __future__ import annotations

import numpy as np

from repro._util import check_nonnegative, check_probability
from repro.core.confidence import EpsilonSchedule
from repro.core.intervals import first_event_row, first_resolution_row
from repro.core.types import GroupOutcome, OrderingResult, RoundSnapshot, Trace
from repro.engines.base import SamplingEngine
from repro.resilience.deadline import Deadline

__all__ = ["run_roundrobin"]


def run_roundrobin(
    engine: SamplingEngine,
    *,
    delta: float = 0.05,
    resolution: float = 0.0,
    kappa: float = 1.0,
    heuristic_factor: float = 1.0,
    without_replacement: bool = True,
    seed: int | np.random.Generator | None = None,
    trace_every: int = 0,
    initial_batch: int = 64,
    max_batch: int = 1 << 18,
    max_rounds: int | None = None,
    deadline: Deadline | None = None,
) -> OrderingResult:
    """Run ROUNDROBIN (or ROUNDROBIN-R when ``resolution`` > 0).

    Parameters mirror :func:`repro.core.ifocus.run_ifocus`.
    """
    check_probability(delta, "delta")
    check_nonnegative(resolution, "resolution")
    variant = "roundrobinr" if resolution > 0 else "roundrobin"
    run = engine.open_run(seed, without_replacement=without_replacement)
    k = run.k
    sizes = run.sizes()
    names = run.group_names()
    schedule = EpsilonSchedule(k, delta, c=run.c, kappa=kappa, heuristic_factor=heuristic_factor)

    sums = np.zeros(k, dtype=np.float64)
    estimates = np.zeros(k, dtype=np.float64)
    samples = np.zeros(k, dtype=np.int64)
    exhausted = np.zeros(k, dtype=bool)
    live = np.ones(k, dtype=bool)  # still being sampled (not exhausted)
    trace = Trace(every=trace_every) if trace_every > 0 else None

    all_gids = np.arange(k, dtype=np.int64)
    first = run.draw_block(all_gids, 1)[0]
    sums[:] = first
    estimates[:] = first
    run.charge_block(all_gids, 1)
    samples[:] = 1
    m = 1
    final_eps = float(schedule(1.0, float(sizes.max()) if without_replacement else None))
    _trace_round(trace, 1, samples, estimates, final_eps, live)

    done = k <= 1
    truncated = False
    deadline_exceeded = False
    batch = int(initial_batch)
    while not done:
        if max_rounds is not None and m >= max_rounds:
            truncated = True
            break
        if deadline is not None and deadline.check():
            deadline_exceeded = True
            break
        if without_replacement:
            for gid in np.flatnonzero(live & (sizes <= m)):
                live[gid] = False
                exhausted[gid] = True
                estimates[gid] = run.exact_mean(int(gid))
            if not live.any():
                break

        live_idx = np.flatnonzero(live)
        b_eff = batch
        if without_replacement:
            b_eff = min(b_eff, int(sizes[live_idx].min()) - m)
        if max_rounds is not None:
            b_eff = min(b_eff, max_rounds - m)
        b_eff = max(b_eff, 1)

        rounds = np.arange(m + 1, m + b_eff + 1, dtype=np.float64)
        blocks = run.draw_block(live_idx, b_eff)
        csums = np.cumsum(blocks, axis=0) + sums[live_idx][None, :]
        prefix = csums / rounds[:, None]

        n_max = float(sizes[live_idx].max()) if without_replacement else None
        eps = np.asarray(schedule.segment(rounds, n_max), dtype=np.float64)

        res_row = first_resolution_row(eps, resolution)

        # Termination: the first round where every live interval is disjoint
        # from every other live interval and clears all frozen exact points.
        # A resolution stop makes later rows moot, so the galloping scan is
        # capped there.
        cap = b_eff if res_row is None else res_row + 1
        frozen_vals = estimates[exhausted]
        stop_row, _ = first_event_row(
            prefix[:cap], eps[:cap], obstacles=frozen_vals, require_all=True
        )

        event = None
        if stop_row is not None or res_row is not None:
            event = min(r for r in (stop_row, res_row) if r is not None)

        consume = b_eff if event is None else event + 1
        _trace_batch(trace, rounds, prefix, eps, live_idx, estimates, samples, live, consume)
        sums[live_idx] = csums[consume - 1, :]
        estimates[live_idx] = prefix[consume - 1, :]
        samples[live_idx] += consume
        run.charge_block(live_idx, consume)
        m += consume
        final_eps = float(eps[consume - 1])
        if event is not None:
            done = True
        batch = min(batch * 2, max_batch)

    groups = [
        GroupOutcome(
            index=i,
            name=names[i],
            estimate=float(estimates[i]),
            samples=int(samples[i]),
            half_width=0.0 if exhausted[i] else final_eps,
            exhausted=bool(exhausted[i]),
            finalized_round=m,
        )
        for i in range(k)
    ]
    order = list(np.argsort(samples, kind="stable"))
    return OrderingResult(
        algorithm=variant,
        estimates=estimates.copy(),
        samples_per_group=samples.copy(),
        rounds=m,
        groups=groups,
        inactive_order=[int(i) for i in order],
        trace=trace,
        params={
            "delta": delta,
            "resolution": resolution,
            "kappa": kappa,
            "heuristic_factor": heuristic_factor,
            "without_replacement": without_replacement,
            "c": run.c,
            "truncated": truncated,
            "deadline_exceeded": deadline_exceeded,
        },
        stats=run.stats,
    )


def _trace_round(
    trace: Trace | None,
    m: int,
    samples: np.ndarray,
    estimates: np.ndarray,
    eps: float,
    live: np.ndarray,
) -> None:
    if trace is None or m % trace.every != 0:
        return
    trace.append(
        RoundSnapshot(
            round_index=m,
            cumulative_samples=int(samples.sum()),
            active=tuple(int(g) for g in np.flatnonzero(live)),
            estimates=estimates.copy(),
            epsilon=eps,
        )
    )


def _trace_batch(
    trace: Trace | None,
    rounds: np.ndarray,
    prefix: np.ndarray,
    eps: np.ndarray,
    live_idx: np.ndarray,
    estimates: np.ndarray,
    samples: np.ndarray,
    live: np.ndarray,
    consume: int,
) -> None:
    if trace is None:
        return
    base = int(samples.sum())
    for row in range(consume):
        round_m = int(rounds[row])
        if round_m % trace.every != 0:
            continue
        est = estimates.copy()
        est[live_idx] = prefix[row]
        trace.append(
            RoundSnapshot(
                round_index=round_m,
                cumulative_samples=base + (row + 1) * live_idx.size,
                active=tuple(int(g) for g in live_idx),
                estimates=est,
                epsilon=float(eps[row]),
            )
        )
