"""Confidence-interval half-width schedules used by the sampling algorithms.

The central bound is the *anytime* (law-of-the-iterated-logarithm style)
confidence interval of Theorem 3.2 in the paper, derived from the
Hoeffding-Serfling inequality: after m samples drawn without replacement from
a population of n values in [0, c],

    eps_m = c * sqrt( (1 - (m/kappa - 1)/n)
                      * (2*log log_kappa(m) + log(pi^2 / (3*delta)))
                      / (2*m/kappa) )

holds simultaneously for *all* m with probability >= 1 - delta.  IFOCUS uses
this with delta/k per group (Alg. 1 line 6, where the log term then reads
log(pi^2 k / (3 delta))).

Sampling *with* replacement drops the finite-population factor
(1 - (m/kappa - 1)/n), per Section 3.6 of the paper; the algorithm then does
not need the group sizes n_i.

The paper's footnote fixes kappa = 1 and replaces the (degenerate) log_kappa
with the natural logarithm; we additionally clamp the iterated logarithm at 0
for m <= e, where the additive log(pi^2 k/(3 delta)) term dominates anyway.
Empirical coverage of the resulting schedule is validated in the test suite.
"""

from __future__ import annotations

import math

import numpy as np

from repro._util import check_positive, check_probability

__all__ = [
    "iterated_log",
    "anytime_epsilon",
    "ifocus_epsilon",
    "hoeffding_epsilon",
    "chernoff_sample_size",
    "EpsilonSchedule",
]


def iterated_log(m: np.ndarray | float, kappa: float = 1.0) -> np.ndarray | float:
    """``log log_kappa(m)`` with the paper's kappa=1 convention, clamped at 0.

    For kappa == 1, ``log_kappa`` is replaced by the natural log (paper
    footnote).  Values of m for which the iterated log would be negative or
    undefined (m <= e for kappa=1) are clamped to 0.
    """
    arr = np.asarray(m, dtype=np.float64)
    if kappa < 1.0:
        raise ValueError(f"kappa must be >= 1, got {kappa}")
    with np.errstate(divide="ignore", invalid="ignore"):
        inner = np.log(np.maximum(arr, 1.0))
        if kappa != 1.0:
            inner = inner / math.log(kappa)
        out = np.log(np.maximum(inner, 1.0))
    if np.isscalar(m):
        return float(out)
    return out


def anytime_epsilon(
    m: np.ndarray | float,
    delta: float,
    c: float = 1.0,
    n: int | float | None = None,
    kappa: float = 1.0,
) -> np.ndarray | float:
    """Anytime half-width after m samples for a single group (Theorem 3.2).

    Args:
        m: number of samples drawn so far (scalar or array of round indices).
        delta: failure probability budget for this group (the bound holds for
            all m simultaneously with probability >= 1 - delta).
        c: upper bound on the values (values lie in [0, c]).
        n: population size for sampling *without* replacement; ``None`` means
            sampling with replacement (no finite-population correction).
        kappa: the geometric grid parameter; kappa = 1 uses natural logs per
            the paper's footnote.

    Returns:
        Half-width(s) eps_m, same shape as ``m``.
    """
    check_probability(delta, "delta")
    check_positive(c, "c")
    arr = np.asarray(m, dtype=np.float64)
    if np.any(arr < 1):
        raise ValueError("m must be >= 1")
    m_eff = arr / kappa
    tail = 2.0 * np.asarray(iterated_log(arr, kappa)) + math.log(math.pi**2 / (3.0 * delta))
    if n is None:
        fpc = 1.0
    else:
        if n <= 0:
            raise ValueError(f"population size n must be positive, got {n}")
        fpc = np.maximum(1.0 - (m_eff - 1.0) / float(n), 0.0)
    out = c * np.sqrt(fpc * tail / (2.0 * m_eff))
    if np.isscalar(m):
        return float(out)
    return out


def ifocus_epsilon(
    m: np.ndarray | float,
    k: int,
    delta: float,
    c: float = 1.0,
    n: int | float | None = None,
    kappa: float = 1.0,
    heuristic_factor: float = 1.0,
) -> np.ndarray | float:
    """The shared IFOCUS half-width (Alg. 1 line 6).

    This is :func:`anytime_epsilon` with a per-group budget of delta/k (the
    log term becomes log(pi^2 k / (3 delta))), optionally divided by the
    *heuristic factor* studied in Fig. 5 of the paper (factor > 1 shrinks the
    intervals faster than the theory allows and voids the guarantee).
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    check_positive(heuristic_factor, "heuristic_factor")
    eps = anytime_epsilon(m, delta / k, c=c, n=n, kappa=kappa)
    if heuristic_factor != 1.0:
        eps = eps / heuristic_factor
    return eps


def hoeffding_epsilon(m: np.ndarray | float, delta: float, c: float = 1.0) -> np.ndarray | float:
    """Fixed-m two-sided Hoeffding half-width: c * sqrt(ln(2/delta) / (2m))."""
    check_probability(delta, "delta")
    check_positive(c, "c")
    arr = np.asarray(m, dtype=np.float64)
    if np.any(arr < 1):
        raise ValueError("m must be >= 1")
    out = c * np.sqrt(math.log(2.0 / delta) / (2.0 * arr))
    if np.isscalar(m):
        return float(out)
    return out


def chernoff_sample_size(eps: float, delta: float, c: float = 1.0) -> int:
    """Samples needed by ESTIMATEMEAN (Alg. 2): ceil(c^2/(2 eps^2) * ln(2/delta)).

    Drawing this many independent samples gives |nu - mu| <= eps with
    probability >= 1 - delta (Lemma 4 / Chernoff-Hoeffding).
    """
    check_positive(eps, "eps")
    check_probability(delta, "delta")
    check_positive(c, "c")
    return int(math.ceil(c * c / (2.0 * eps * eps) * math.log(2.0 / delta)))


class EpsilonSchedule:
    """A reusable, precomputable epsilon schedule for one algorithm run.

    Wraps :func:`ifocus_epsilon` with the run's fixed parameters so the hot
    loop only supplies round indices.  Vectorized over rounds for the batched
    executor.
    """

    def __init__(
        self,
        k: int,
        delta: float,
        c: float = 1.0,
        kappa: float = 1.0,
        heuristic_factor: float = 1.0,
    ) -> None:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.k = int(k)
        self.delta = check_probability(delta, "delta")
        self.c = check_positive(c, "c")
        if kappa < 1.0:
            raise ValueError(f"kappa must be >= 1, got {kappa}")
        self.kappa = float(kappa)
        self.heuristic_factor = check_positive(heuristic_factor, "heuristic_factor")
        # Constant additive tail term log(pi^2 k / (3 delta)), written exactly
        # as anytime_epsilon evaluates it for a delta/k budget so ``segment``
        # is bit-identical to ``__call__`` (the algebraically equal
        # log(pi^2 * k / (3 delta)) can differ by one ulp).
        self._tail_const = math.log(math.pi**2 / (3.0 * (self.delta / self.k)))

    def __call__(self, m: np.ndarray | float, n_max: float | None = None) -> np.ndarray | float:
        """Half-width(s) at round(s) m given the max active group size n_max.

        ``n_max = None`` means sampling with replacement.
        """
        return ifocus_epsilon(
            m,
            self.k,
            self.delta,
            c=self.c,
            n=n_max,
            kappa=self.kappa,
            heuristic_factor=self.heuristic_factor,
        )

    def segment(self, rounds: np.ndarray, n_max: float | None = None) -> np.ndarray:
        """Validation-free vectorized epsilon over a batch of round indices.

        Identical values to ``__call__`` (asserted in the test suite); this
        is the batched executors' hot path - evaluated once per batch and
        re-evaluated only when the finite-population factor's n_max changes -
        so it skips the per-call argument checks and reuses the precomputed
        additive tail constant log(pi^2 k / (3 delta)).
        """
        arr = np.asarray(rounds, dtype=np.float64)
        m_eff = arr / self.kappa
        tail = 2.0 * np.asarray(iterated_log(arr, self.kappa)) + self._tail_const
        if n_max is None:
            fpc = 1.0
        else:
            fpc = np.maximum(1.0 - (m_eff - 1.0) / float(n_max), 0.0)
        out = self.c * np.sqrt(fpc * tail / (2.0 * m_eff))
        if self.heuristic_factor != 1.0:
            out = out / self.heuristic_factor
        return out

    def rounds_until(self, target: float, n_max: float | None = None, m_hi: int = 1 << 48) -> int:
        """Smallest m with eps_m < target (binary search; used for planning).

        Raises ValueError if the target cannot be reached below ``m_hi`` (for
        with-replacement schedules eps -> 0, so any positive target is
        eventually reached).
        """
        check_positive(target, "target")
        lo, hi = 1, 2
        while hi < m_hi and float(self(hi, n_max)) >= target:
            hi *= 2
        if float(self(hi, n_max)) >= target:
            raise ValueError(f"epsilon does not drop below {target} before m={m_hi}")
        while lo < hi:
            mid = (lo + hi) // 2
            if float(self(mid, n_max)) < target:
                hi = mid
            else:
                lo = mid + 1
        return lo
