"""Result and trace types shared by all ordering-guarantee sampling algorithms.

Every algorithm in :mod:`repro.core` (IFOCUS, IREFINE, ROUNDROBIN, SCAN) returns
an :class:`OrderingResult`; experiment harnesses and the visualization layer
consume only this type, so algorithms are interchangeable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

__all__ = [
    "GroupOutcome",
    "RoundSnapshot",
    "Trace",
    "OrderingResult",
]


@dataclass(frozen=True)
class GroupOutcome:
    """Final per-group state when the algorithm terminated.

    Attributes:
        index: position of the group in the input (0-based).
        name: group label (e.g. airline code).
        estimate: the returned estimate nu_i of the group average mu_i.
        samples: m_i, the number of samples drawn from this group.
        half_width: the half-width of the group's confidence interval when it
            was finalized (0.0 if the group was exhausted).
        exhausted: True if every element of the group was read (m_i == n_i),
            in which case ``estimate`` is the exact group average.
        finalized_round: the round m at which the group left the active set.
    """

    index: int
    name: str
    estimate: float
    samples: int
    half_width: float
    exhausted: bool
    finalized_round: int


@dataclass(frozen=True)
class RoundSnapshot:
    """State of the algorithm at the end of one round (used for traces).

    Snapshots power the convergence experiments (Fig. 5(c), Fig. 6(a)) and the
    Table 1 execution trace.
    """

    round_index: int
    cumulative_samples: int
    active: tuple[int, ...]
    estimates: np.ndarray
    epsilon: float

    def intervals(self) -> list[tuple[float, float]]:
        """Confidence intervals [nu - eps, nu + eps] for every group."""
        return [(float(v - self.epsilon), float(v + self.epsilon)) for v in self.estimates]


@dataclass
class Trace:
    """A (possibly strided) sequence of per-round snapshots."""

    every: int = 1
    snapshots: list[RoundSnapshot] = field(default_factory=list)

    def append(self, snap: RoundSnapshot) -> None:
        self.snapshots.append(snap)

    def __len__(self) -> int:
        return len(self.snapshots)

    def __iter__(self):
        return iter(self.snapshots)

    def samples_series(self) -> np.ndarray:
        """Cumulative sample counts for each recorded snapshot."""
        return np.array([s.cumulative_samples for s in self.snapshots], dtype=np.int64)

    def active_counts(self) -> np.ndarray:
        """Number of active groups at each recorded snapshot."""
        return np.array([len(s.active) for s in self.snapshots], dtype=np.int64)

    def estimate_matrix(self) -> np.ndarray:
        """Stacked estimates, shape (num_snapshots, k)."""
        return np.stack([s.estimates for s in self.snapshots])


@dataclass
class OrderingResult:
    """Output of an ordering-guarantee sampling algorithm.

    Attributes:
        algorithm: canonical algorithm name ("ifocus", "irefine", ...).
        estimates: array of nu_1..nu_k in input group order.
        samples_per_group: array of m_1..m_k.
        rounds: number of rounds executed (the final value of m).
        groups: rich per-group outcomes, in input order.
        inactive_order: group indices in the order they left the active set
            (this is the partial-result emission order of Problem 7).
        trace: optional per-round trace.
        params: algorithm parameters for provenance (delta, c, resolution ...).
        stats: engine accounting for the run (charged samples, simulated
            I/O and CPU seconds); ``None`` only for hand-built results.
    """

    algorithm: str
    estimates: np.ndarray
    samples_per_group: np.ndarray
    rounds: int
    groups: list[GroupOutcome]
    inactive_order: list[int]
    trace: Trace | None = None
    params: dict[str, Any] = field(default_factory=dict)
    stats: Any = None

    @property
    def k(self) -> int:
        """Number of groups."""
        return len(self.estimates)

    @property
    def total_samples(self) -> int:
        """Total sample complexity C = sum_i m_i."""
        return int(self.samples_per_group.sum())

    def order(self) -> np.ndarray:
        """Indices of groups sorted by ascending estimate."""
        return np.argsort(self.estimates, kind="stable")

    def ranking(self) -> np.ndarray:
        """Rank (0 = smallest estimate) of each group in input order."""
        ranks = np.empty(self.k, dtype=np.int64)
        ranks[self.order()] = np.arange(self.k)
        return ranks

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.algorithm}: k={self.k} rounds={self.rounds} "
            f"samples={self.total_samples}"
        )
