"""Result and trace types shared by all ordering-guarantee sampling algorithms.

Every algorithm in :mod:`repro.core` (IFOCUS, IREFINE, ROUNDROBIN, SCAN) returns
an :class:`OrderingResult`; experiment harnesses and the visualization layer
consume only this type, so algorithms are interchangeable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

__all__ = [
    "GroupOutcome",
    "RoundSnapshot",
    "Trace",
    "OrderingResult",
    "jsonify_value",
]


def jsonify_value(value: Any) -> Any:
    """Coerce numpy scalars/arrays (recursively) into JSON-native values.

    Algorithm ``params`` dicts accumulate whatever the runner recorded -
    numpy floats, int64 counters, label arrays - so the wire layer normalizes
    them once here instead of every serializer special-casing numpy.
    """
    if isinstance(value, np.ndarray):
        return [jsonify_value(v) for v in value.tolist()]
    if isinstance(value, (np.bool_,)):
        return bool(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, dict):
        return {str(k): jsonify_value(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [jsonify_value(v) for v in value]
    return value


@dataclass(frozen=True)
class GroupOutcome:
    """Final per-group state when the algorithm terminated.

    Attributes:
        index: position of the group in the input (0-based).
        name: group label (e.g. airline code).
        estimate: the returned estimate nu_i of the group average mu_i.
        samples: m_i, the number of samples drawn from this group.
        half_width: the half-width of the group's confidence interval when it
            was finalized (0.0 if the group was exhausted).
        exhausted: True if every element of the group was read (m_i == n_i),
            in which case ``estimate`` is the exact group average.
        finalized_round: the round m at which the group left the active set.
    """

    index: int
    name: str
    estimate: float
    samples: int
    half_width: float
    exhausted: bool
    finalized_round: int

    def to_dict(self) -> dict:
        return {
            "index": int(self.index),
            "name": self.name,
            "estimate": float(self.estimate),
            "samples": int(self.samples),
            "half_width": float(self.half_width),
            "exhausted": bool(self.exhausted),
            "finalized_round": int(self.finalized_round),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "GroupOutcome":
        return cls(
            index=int(data["index"]),
            name=data["name"],
            estimate=float(data["estimate"]),
            samples=int(data["samples"]),
            half_width=float(data["half_width"]),
            exhausted=bool(data["exhausted"]),
            finalized_round=int(data["finalized_round"]),
        )


@dataclass(frozen=True)
class RoundSnapshot:
    """State of the algorithm at the end of one round (used for traces).

    Snapshots power the convergence experiments (Fig. 5(c), Fig. 6(a)) and the
    Table 1 execution trace.
    """

    round_index: int
    cumulative_samples: int
    active: tuple[int, ...]
    estimates: np.ndarray
    epsilon: float

    def intervals(self) -> list[tuple[float, float]]:
        """Confidence intervals [nu - eps, nu + eps] for every group."""
        return [(float(v - self.epsilon), float(v + self.epsilon)) for v in self.estimates]


@dataclass
class Trace:
    """A (possibly strided) sequence of per-round snapshots."""

    every: int = 1
    snapshots: list[RoundSnapshot] = field(default_factory=list)

    def append(self, snap: RoundSnapshot) -> None:
        self.snapshots.append(snap)

    def __len__(self) -> int:
        return len(self.snapshots)

    def __iter__(self):
        return iter(self.snapshots)

    def samples_series(self) -> np.ndarray:
        """Cumulative sample counts for each recorded snapshot."""
        return np.array([s.cumulative_samples for s in self.snapshots], dtype=np.int64)

    def active_counts(self) -> np.ndarray:
        """Number of active groups at each recorded snapshot."""
        return np.array([len(s.active) for s in self.snapshots], dtype=np.int64)

    def estimate_matrix(self) -> np.ndarray:
        """Stacked estimates, shape (num_snapshots, k)."""
        return np.stack([s.estimates for s in self.snapshots])


@dataclass
class OrderingResult:
    """Output of an ordering-guarantee sampling algorithm.

    Attributes:
        algorithm: canonical algorithm name ("ifocus", "irefine", ...).
        estimates: array of nu_1..nu_k in input group order.
        samples_per_group: array of m_1..m_k.
        rounds: number of rounds executed (the final value of m).
        groups: rich per-group outcomes, in input order.
        inactive_order: group indices in the order they left the active set
            (this is the partial-result emission order of Problem 7).
        trace: optional per-round trace.
        params: algorithm parameters for provenance (delta, c, resolution ...).
        stats: engine accounting for the run (charged samples, simulated
            I/O and CPU seconds); ``None`` only for hand-built results.
    """

    algorithm: str
    estimates: np.ndarray
    samples_per_group: np.ndarray
    rounds: int
    groups: list[GroupOutcome]
    inactive_order: list[int]
    trace: Trace | None = None
    params: dict[str, Any] = field(default_factory=dict)
    stats: Any = None

    @property
    def k(self) -> int:
        """Number of groups."""
        return len(self.estimates)

    @property
    def total_samples(self) -> int:
        """Total sample complexity C = sum_i m_i."""
        return int(self.samples_per_group.sum())

    def order(self) -> np.ndarray:
        """Indices of groups sorted by ascending estimate."""
        return np.argsort(self.estimates, kind="stable")

    def ranking(self) -> np.ndarray:
        """Rank (0 = smallest estimate) of each group in input order."""
        ranks = np.empty(self.k, dtype=np.int64)
        ranks[self.order()] = np.arange(self.k)
        return ranks

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.algorithm}: k={self.k} rounds={self.rounds} "
            f"samples={self.total_samples}"
        )

    def to_dict(self) -> dict:
        """JSON-safe dict form (the server wire format).

        Per-round traces are deliberately not serialized (they are debugging
        artifacts, unbounded in size); everything else - estimates, per-group
        outcomes, finalization order, params, engine accounting - round-trips
        through :meth:`from_dict`.
        """
        stats = None
        if self.stats is not None:
            stats = {
                "samples_per_group": [int(v) for v in self.stats.samples_per_group],
                "io_seconds": float(self.stats.io_seconds),
                "cpu_seconds": float(self.stats.cpu_seconds),
                "scanned_rows": int(self.stats.scanned_rows),
            }
        return {
            "algorithm": self.algorithm,
            "estimates": [float(v) for v in self.estimates],
            "samples_per_group": [int(v) for v in self.samples_per_group],
            "rounds": int(self.rounds),
            "groups": [g.to_dict() for g in self.groups],
            "inactive_order": [int(i) for i in self.inactive_order],
            "params": jsonify_value(self.params),
            "stats": stats,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "OrderingResult":
        stats = None
        if data.get("stats") is not None:
            from repro.engines.base import RunStats

            s = data["stats"]
            stats = RunStats(
                samples_per_group=np.asarray(s["samples_per_group"], dtype=np.int64),
                io_seconds=float(s["io_seconds"]),
                cpu_seconds=float(s["cpu_seconds"]),
                scanned_rows=int(s["scanned_rows"]),
            )
        return cls(
            algorithm=data["algorithm"],
            estimates=np.asarray(data["estimates"], dtype=np.float64),
            samples_per_group=np.asarray(data["samples_per_group"], dtype=np.int64),
            rounds=int(data["rounds"]),
            groups=[GroupOutcome.from_dict(g) for g in data["groups"]],
            inactive_order=[int(i) for i in data["inactive_order"]],
            trace=None,
            params=dict(data.get("params", {})),
            stats=stats,
        )
