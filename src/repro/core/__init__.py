"""Core ordering-guarantee sampling algorithms (paper Sections 3 and 5.1)."""

from repro.core.confidence import (
    EpsilonSchedule,
    anytime_epsilon,
    chernoff_sample_size,
    hoeffding_epsilon,
    ifocus_epsilon,
    iterated_log,
)
from repro.core.estimator import RunningMean
from repro.core.ifocus import run_ifocus
from repro.core.irefine import run_irefine
from repro.core.reference import LoopContext, default_policy, run_ifocus_reference
from repro.core.registry import ALGORITHMS, algorithm_names, run_algorithm
from repro.core.roundrobin import run_roundrobin
from repro.core.scan import run_scan
from repro.core.types import GroupOutcome, OrderingResult, RoundSnapshot, Trace

__all__ = [
    "EpsilonSchedule",
    "anytime_epsilon",
    "chernoff_sample_size",
    "hoeffding_epsilon",
    "ifocus_epsilon",
    "iterated_log",
    "RunningMean",
    "run_ifocus",
    "run_irefine",
    "run_ifocus_reference",
    "LoopContext",
    "default_policy",
    "ALGORITHMS",
    "algorithm_names",
    "run_algorithm",
    "run_roundrobin",
    "run_scan",
    "GroupOutcome",
    "OrderingResult",
    "RoundSnapshot",
    "Trace",
]
