"""IFOCUS (Algorithm 1) - the paper's core contribution.

IFOCUS maintains, for every group, an anytime confidence interval
[nu_i - eps_m, nu_i + eps_m] around the running mean of the samples drawn so
far.  Each round it draws one extra sample from every *active* group (a group
whose interval still intersects another active group's interval) and removes
groups whose intervals have become disjoint from all other active intervals.
With the Hoeffding-Serfling epsilon schedule of Theorem 3.2 the returned
estimates are ordered like the true means with probability >= 1 - delta, at
near-optimal sample cost (Theorems 3.5/3.6/3.8).

This module contains the *production* executor: it is batched over rounds and
fully vectorized with numpy, yet produces exactly the same samples, removal
rounds, and estimates as the one-sample-at-a-time loop in
:mod:`repro.core.reference` (the equivalence is asserted in the test suite).
Exactness comes from two facts:

* every group has its own independent random stream (see
  :func:`repro._util.spawn_group_rngs`), so pre-drawing a block for a group
  and discarding an unused suffix never perturbs any other group's draws.
  Bit-exact equivalence additionally requires the group sampler to be
  *stream-stable* (drawing a block of B samples consumes the stream exactly
  like B single draws) - true for materialized groups (the without-
  replacement permutation trivially so); distribution-backed virtual groups
  use rejection sampling internally and match the reference loop in
  distribution rather than bit-for-bit;
* within one batch the running means after every round are recoverable from a
  cumulative sum, and with a shared per-round epsilon the "is this interval
  disjoint from all others" test reduces to an exact sorted adjacent-gap test
  (:func:`repro.core.intervals.separated_equal_width_batch`).

Batched execution & fused sampling
----------------------------------

The executor's per-batch work is fused end to end so no step scales with a
Python call per group:

* **Drawing** goes through :meth:`repro.engines.base.EngineRun.draw_block`:
  one call returns the whole ``(batch, k_active)`` sample matrix.  Engines
  serve it natively - materialized groups via a columnar permutation store
  (one fancy-index gather), virtual groups via one shared RNG call per batch
  with a vectorized inverse-CDF per distribution family, NEEDLETAIL groups
  via batched rank->select->fetch with a single fused value gather (see
  DESIGN_PERF.md).  ``draw_block`` is bit-exact with the sequential
  per-group ``draw`` loop it replaces, so reference equivalence is
  unaffected.
* **Charging** survivors is one :meth:`~repro.engines.base.EngineRun.charge_block`
  call, and the survivor state update maps groups to batch columns with a
  ``searchsorted`` instead of a per-group dict.
* **Walking** the batch is incremental: the epsilon segment is computed once
  per batch with the validation-free
  :meth:`~repro.core.confidence.EpsilonSchedule.segment` and reused across
  finalization events while ``n_max`` (the largest live group size, which
  sets the finite-population factor) is unchanged; separation events are
  located with the galloping-window
  :func:`~repro.core.intervals.first_event_row`, so rows already cleared are
  never re-tested and an event at row r costs O(r k log k) rather than
  O(batch k log k).

Supported configuration (all of Section 3 and 5 of the paper):

* ``resolution`` r > 0 - the IFOCUS-R variant for Problem 2: terminate every
  remaining group once eps_m < r/4 (Section 3.6, "Visual Resolution").
* ``without_replacement`` - Hoeffding-Serfling epsilon with the
  finite-population factor, plus exhaustion (a group sampled m = n_i times is
  finalized at its exact mean); with replacement drops the factor and needs
  no group sizes (Section 3.6, "Sampling with Replacement").
* ``heuristic_factor`` h - divides epsilon by h to emulate the (unsound)
  aggressive shrinking studied in Fig. 5(a)/(b).
* ``trace_every`` - record strided per-round snapshots for the convergence
  experiments (Fig. 5(c), Fig. 6(a)) and the Table 1 execution trace.

Groups removed from the active set are never re-activated (alternative (a) in
Section 3.1, the optimality-preserving choice; alternative (b) is available in
the reference implementation for the ablation benchmark).

One deliberate strengthening beyond the paper's pseudocode: a group sampled
to exhaustion freezes at its *exact* mean, and that frozen value remains an
obstacle - no active group may leave the active set while its interval still
covers a frozen exact mean.  Algorithm 1 never considers exhaustion; without
this rule a group could finalize on the wrong side of a fully-read
neighbor's exact average, silently breaking strict ordering on hard
instances (this is why the paper's real-data runs read *both* sides of every
conflicting pair in full).
"""

from __future__ import annotations

import numpy as np

from repro._compat import deprecated_entrypoint
from repro._util import check_nonnegative, check_probability
from repro.core.confidence import EpsilonSchedule
from repro.core.intervals import first_event_row, first_resolution_row
from repro.core.types import GroupOutcome, OrderingResult, RoundSnapshot, Trace
from repro.engines.base import EngineRun, SamplingEngine
from repro.resilience.deadline import Deadline

__all__ = ["run_ifocus"]

_DEFAULT_INITIAL_BATCH = 64
_DEFAULT_MAX_BATCH = 1 << 18


class _IFocusState:
    """Mutable per-run state for the batched executor."""

    def __init__(self, run: EngineRun, trace_every: int) -> None:
        k = run.k
        self.run = run
        self.k = k
        self.sizes = run.sizes()
        self.sums = np.zeros(k, dtype=np.float64)
        self.estimates = np.zeros(k, dtype=np.float64)
        self.samples = np.zeros(k, dtype=np.int64)
        self.half_widths = np.zeros(k, dtype=np.float64)
        self.finalized_round = np.zeros(k, dtype=np.int64)
        self.exhausted = np.zeros(k, dtype=bool)
        self.active = np.ones(k, dtype=bool)
        self.inactive_order: list[int] = []
        self.trace = Trace(every=trace_every) if trace_every > 0 else None

    def finalize(
        self,
        gid: int,
        estimate: float,
        round_m: int,
        half_width: float,
        exhausted: bool,
        batch_rounds_consumed: int,
    ) -> None:
        """Remove group ``gid`` from the active set at round ``round_m``."""
        self.active[gid] = False
        self.estimates[gid] = estimate
        self.samples[gid] += batch_rounds_consumed
        self.half_widths[gid] = half_width
        self.finalized_round[gid] = round_m
        self.exhausted[gid] = exhausted
        self.inactive_order.append(gid)
        self.run.charge(gid, batch_rounds_consumed)

    def finalize_exhausted(self, gids: np.ndarray, round_m: int) -> None:
        """Vectorized finalization of fully-read groups at their exact means.

        Mass exhaustion (hundreds of equal-sized groups hitting n_i = m in
        the same round) is the common endgame at large k; this replaces the
        per-group ``finalize`` loop.  Nothing is charged: the n_i draws that
        reached exhaustion were already charged.
        """
        self.active[gids] = False
        self.estimates[gids] = [self.run.exact_mean(int(g)) for g in gids]
        self.half_widths[gids] = 0.0
        self.finalized_round[gids] = round_m
        self.exhausted[gids] = True
        self.inactive_order.extend(int(g) for g in gids)


def _run_ifocus(
    engine: SamplingEngine,
    *,
    delta: float = 0.05,
    resolution: float = 0.0,
    kappa: float = 1.0,
    heuristic_factor: float = 1.0,
    without_replacement: bool = True,
    seed: int | np.random.Generator | None = None,
    trace_every: int = 0,
    initial_batch: int = _DEFAULT_INITIAL_BATCH,
    max_batch: int = _DEFAULT_MAX_BATCH,
    max_rounds: int | None = None,
    deadline: "Deadline | None" = None,
) -> OrderingResult:
    """Run IFOCUS (or IFOCUS-R when ``resolution`` > 0) over an engine.

    Args:
        engine: a :class:`~repro.engines.base.SamplingEngine` over the target
            population.
        delta: failure probability; the output ordering is correct with
            probability >= 1 - delta (Theorem 3.5).
        resolution: minimal resolution r of Problem 2; groups whose true means
            are within r of each other need not be ordered, and the algorithm
            stops refining once eps < r/4.  0 disables the relaxation.
        kappa: geometric grid parameter of the epsilon schedule (paper uses 1).
        heuristic_factor: divide epsilon by this factor (Fig. 5 experiments;
            values > 1 void the guarantee).
        without_replacement: sample each group without replacement (requires
            group sizes; tighter epsilon; exhaustion finalizes a fully-read
            group at its exact mean).
        seed: RNG seed for the run's sampling streams.
        trace_every: record a snapshot every this many rounds (0 = no trace).
        initial_batch / max_batch: internal batching knobs; results are
            independent of them (asserted in tests).
        max_rounds: optional safety cap on the number of rounds; if reached,
            remaining active groups are finalized at their current estimates
            and ``params["truncated"]`` is set.
        deadline: optional :class:`~repro.resilience.deadline.Deadline`,
            polled once per round: on expiry remaining active groups are
            finalized at their current estimates (anytime behaviour) and
            ``params["deadline_exceeded"]`` is set; on cancellation
            :class:`~repro.errors.QueryCancelled` propagates.

    Returns:
        An :class:`~repro.core.types.OrderingResult`.
    """
    check_probability(delta, "delta")
    check_nonnegative(resolution, "resolution")
    if initial_batch < 1 or max_batch < initial_batch:
        raise ValueError("need 1 <= initial_batch <= max_batch")
    variant = "ifocusr" if resolution > 0 else "ifocus"
    run = engine.open_run(seed, without_replacement=without_replacement)
    k = run.k
    schedule = EpsilonSchedule(
        k, delta, c=run.c, kappa=kappa, heuristic_factor=heuristic_factor
    )
    state = _IFocusState(run, trace_every)

    # Round m = 1: one sample per group to seed the estimates (Alg. 1 line 2).
    all_gids = np.arange(k, dtype=np.int64)
    first = run.draw_block(all_gids, 1)[0]
    state.sums[:] = first
    state.estimates[:] = first
    run.charge_block(all_gids, 1)
    state.samples[:] = 1
    m = 1
    _maybe_trace_initial(state, schedule, without_replacement)

    batch = int(initial_batch)
    truncated = False
    deadline_exceeded = False
    while state.active.any():
        if max_rounds is not None and m >= max_rounds:
            truncated = True
            _truncate_active(state, schedule, m, without_replacement)
            break
        if deadline is not None and deadline.check():
            deadline_exceeded = True
            _truncate_active(state, schedule, m, without_replacement)
            break

        # Exhaustion pre-check: an active group with n_i == m has been read in
        # full; its running mean is the exact group mean.
        if without_replacement:
            exhaust = np.flatnonzero(state.active & (state.sizes <= m))
            if exhaust.size:
                state.finalize_exhausted(exhaust, m)
            if not state.active.any():
                break

        active_idx = np.flatnonzero(state.active)
        b_eff = batch
        if without_replacement:
            b_eff = min(b_eff, int(state.sizes[active_idx].min()) - m)
        if max_rounds is not None:
            b_eff = min(b_eff, max_rounds - m)
        b_eff = max(b_eff, 1)

        rounds = np.arange(m + 1, m + b_eff + 1, dtype=np.float64)
        blocks = run.draw_block(active_idx, b_eff)
        # The block is caller-owned, so the cumulative sum and the division
        # by the round index run in place; only the final sums row (needed
        # for the survivors' running state) is kept aside.
        csums = np.cumsum(blocks, axis=0, out=blocks)
        csums += state.sums[active_idx][None, :]
        end_sums = csums[-1].copy()
        prefix = csums  # (b_eff, k_active): estimates per round
        prefix /= rounds[:, None]

        _walk_batch(
            state,
            schedule,
            active_idx,
            rounds,
            prefix,
            resolution,
            without_replacement,
        )
        # Survivors consumed the whole batch; update their running state.
        # ``active_idx`` is sorted, so batch columns come from a searchsorted.
        survivors = np.flatnonzero(state.active)
        if survivors.size:
            cols = np.searchsorted(active_idx, survivors)
            state.sums[survivors] = end_sums[cols]
            state.estimates[survivors] = prefix[-1, cols]
            state.samples[survivors] += b_eff
            run.charge_block(survivors, b_eff)
        m += b_eff
        batch = min(batch * 2, max_batch)

    names = run.group_names()
    groups = [
        GroupOutcome(
            index=i,
            name=names[i],
            estimate=float(state.estimates[i]),
            samples=int(state.samples[i]),
            half_width=float(state.half_widths[i]),
            exhausted=bool(state.exhausted[i]),
            finalized_round=int(state.finalized_round[i]),
        )
        for i in range(k)
    ]
    params = {
        "delta": delta,
        "resolution": resolution,
        "kappa": kappa,
        "heuristic_factor": heuristic_factor,
        "without_replacement": without_replacement,
        "c": run.c,
        "truncated": truncated,
        "deadline_exceeded": deadline_exceeded,
    }
    # ``m`` may overshoot to the batch end when the last group finalizes
    # mid-batch; the number of rounds actually executed is the last
    # finalization round.
    rounds_executed = int(state.finalized_round.max())
    return OrderingResult(
        algorithm=variant,
        estimates=state.estimates.copy(),
        samples_per_group=state.samples.copy(),
        rounds=rounds_executed,
        groups=groups,
        inactive_order=state.inactive_order,
        trace=state.trace,
        params=params,
        stats=run.stats,
    )


run_ifocus = deprecated_entrypoint(
    _run_ifocus,
    "run_ifocus",
    'repro.connect().register("t", table).table("t")'
    '.group_by(X).agg(avg(Y)).run()',
)


def _n_max(state: _IFocusState, active_idx: np.ndarray, without_replacement: bool):
    if not without_replacement:
        return None
    return float(state.sizes[active_idx].max())


def _maybe_trace_initial(
    state: _IFocusState, schedule: EpsilonSchedule, without_replacement: bool
) -> None:
    if state.trace is None:
        return
    active_idx = np.flatnonzero(state.active)
    eps = float(schedule(1.0, _n_max(state, active_idx, without_replacement)))
    state.trace.append(
        RoundSnapshot(
            round_index=1,
            cumulative_samples=int(state.samples.sum()),
            active=tuple(int(g) for g in active_idx),
            estimates=state.estimates.copy(),
            epsilon=eps,
        )
    )


def _record_trace_rows(
    state: _IFocusState,
    rounds: np.ndarray,
    prefix: np.ndarray,
    live_cols: np.ndarray,
    active_gids: np.ndarray,
    row_from: int,
    row_to: int,
    eps_rows: np.ndarray,
) -> None:
    """Append snapshots for strided rounds in [row_from, row_to)."""
    trace = state.trace
    if trace is None:
        return
    every = trace.every
    for row in range(row_from, row_to):
        round_m = int(rounds[row])
        if round_m % every != 0:
            continue
        est = state.estimates.copy()
        est[active_gids] = prefix[row, live_cols]
        # ``state.samples`` for still-active groups holds the pre-batch count
        # (groups finalized earlier in this batch are already updated), so
        # adding (row+1) per live group gives the true cumulative count.
        cumulative = int(state.samples.sum()) + int((row + 1) * active_gids.size)
        trace.append(
            RoundSnapshot(
                round_index=round_m,
                cumulative_samples=cumulative,
                active=tuple(int(g) for g in active_gids),
                estimates=est,
                epsilon=float(eps_rows[row]),
            )
        )


def _walk_batch(
    state: _IFocusState,
    schedule: EpsilonSchedule,
    active_idx: np.ndarray,
    rounds: np.ndarray,
    prefix: np.ndarray,
    resolution: float,
    without_replacement: bool,
) -> int:
    """Process one pre-drawn batch; finalize groups at separation events.

    Incremental: the epsilon segment is evaluated once for the whole batch
    and reused across finalization events - it only changes when the largest
    live group leaves (shrinking ``n_max``, the finite-population factor's
    denominator).  Events are located with the galloping-window scan of
    :func:`~repro.core.intervals.first_event_row`, resuming from the row
    after the previous event, so rows already cleared are never re-tested.

    Returns the number of rows consumed (always the full batch; the return
    value exists for symmetry/debugging).
    """
    b_eff = rounds.shape[0]
    live = np.arange(active_idx.shape[0])  # columns still active
    # Exhausted groups are zero-width obstacles: an active group may not
    # leave while its interval still covers a frozen exact mean (otherwise
    # its final estimate could land on the wrong side of that exact value).
    frozen = state.estimates[state.exhausted]
    row = 0
    n_max = _n_max(state, active_idx, without_replacement)
    eps_full = np.asarray(schedule.segment(rounds, n_max), dtype=np.float64)
    res_at = first_resolution_row(eps_full, resolution)
    while row < b_eff and live.size > 0:
        gids = active_idx[live]
        new_n_max = _n_max(state, gids, without_replacement)
        if new_n_max != n_max:
            n_max = new_n_max
            eps_full[row:] = schedule.segment(rounds[row:], n_max)
            res_at = first_resolution_row(eps_full, resolution, row)

        # A resolution stop at ``res_at`` makes later separation events moot,
        # so the scan is capped there.
        cap = b_eff if res_at is None else min(b_eff, res_at + 1)
        sep_row, sep_mask = first_event_row(
            prefix[row:cap, live], eps_full[row:cap], obstacles=frozen
        )
        sep_abs = row + sep_row if sep_row is not None else None

        if sep_abs is None and res_at is None:
            _record_trace_rows(state, rounds, prefix, live, gids, row, b_eff, eps_full)
            row = b_eff
            break

        if res_at is not None and (sep_abs is None or res_at <= sep_abs):
            # Resolution termination: finalize every remaining active group.
            abs_row = res_at
            _record_trace_rows(
                state, rounds, prefix, live, gids, row, abs_row + 1, eps_full
            )
            round_m = int(rounds[abs_row])
            eps_here = float(eps_full[abs_row])
            for pos in live:
                gid = int(active_idx[pos])
                state.finalize(
                    gid,
                    estimate=float(prefix[abs_row, pos]),
                    round_m=round_m,
                    half_width=eps_here,
                    exhausted=False,
                    batch_rounds_consumed=abs_row + 1,
                )
            live = np.empty(0, dtype=np.int64)
        else:
            abs_row = sep_abs
            _record_trace_rows(
                state, rounds, prefix, live, gids, row, abs_row + 1, eps_full
            )
            round_m = int(rounds[abs_row])
            eps_here = float(eps_full[abs_row])
            newly = np.flatnonzero(sep_mask)
            for j in newly:
                pos = int(live[j])
                gid = int(active_idx[pos])
                state.finalize(
                    gid,
                    estimate=float(prefix[abs_row, pos]),
                    round_m=round_m,
                    half_width=eps_here,
                    exhausted=False,
                    batch_rounds_consumed=abs_row + 1,
                )
            live = np.delete(live, newly)
        row = abs_row + 1
    return row


def _truncate_active(
    state: _IFocusState,
    schedule: EpsilonSchedule,
    m: int,
    without_replacement: bool,
) -> None:
    """Finalize all remaining active groups at round ``m`` (max_rounds cap)."""
    active_idx = np.flatnonzero(state.active)
    n_max = _n_max(state, active_idx, without_replacement)
    eps = float(schedule(float(max(m, 1)), n_max))
    for gid in active_idx:
        state.finalize(
            int(gid),
            estimate=float(state.estimates[gid]) if m > 1 else float(state.sums[gid]),
            round_m=m,
            half_width=eps,
            exhausted=False,
            batch_rounds_consumed=0,
        )
