"""IFOCUS (Algorithm 1) - the paper's core contribution.

IFOCUS maintains, for every group, an anytime confidence interval
[nu_i - eps_m, nu_i + eps_m] around the running mean of the samples drawn so
far.  Each round it draws one extra sample from every *active* group (a group
whose interval still intersects another active group's interval) and removes
groups whose intervals have become disjoint from all other active intervals.
With the Hoeffding-Serfling epsilon schedule of Theorem 3.2 the returned
estimates are ordered like the true means with probability >= 1 - delta, at
near-optimal sample cost (Theorems 3.5/3.6/3.8).

This module contains the *production* executor: it is batched over rounds and
fully vectorized with numpy, yet produces exactly the same samples, removal
rounds, and estimates as the one-sample-at-a-time loop in
:mod:`repro.core.reference` (the equivalence is asserted in the test suite).
Exactness comes from two facts:

* every group has its own independent random stream (see
  :func:`repro._util.spawn_group_rngs`), so pre-drawing a block for a group
  and discarding an unused suffix never perturbs any other group's draws.
  Bit-exact equivalence additionally requires the group sampler to be
  *stream-stable* (drawing a block of B samples consumes the stream exactly
  like B single draws) - true for materialized groups (the without-
  replacement permutation trivially so); distribution-backed virtual groups
  use rejection sampling internally and match the reference loop in
  distribution rather than bit-for-bit;
* within one batch the running means after every round are recoverable from a
  cumulative sum, and with a shared per-round epsilon the "is this interval
  disjoint from all others" test reduces to an exact sorted adjacent-gap test
  (:func:`repro.core.intervals.separated_equal_width_batch`).

Supported configuration (all of Section 3 and 5 of the paper):

* ``resolution`` r > 0 - the IFOCUS-R variant for Problem 2: terminate every
  remaining group once eps_m < r/4 (Section 3.6, "Visual Resolution").
* ``without_replacement`` - Hoeffding-Serfling epsilon with the
  finite-population factor, plus exhaustion (a group sampled m = n_i times is
  finalized at its exact mean); with replacement drops the factor and needs
  no group sizes (Section 3.6, "Sampling with Replacement").
* ``heuristic_factor`` h - divides epsilon by h to emulate the (unsound)
  aggressive shrinking studied in Fig. 5(a)/(b).
* ``trace_every`` - record strided per-round snapshots for the convergence
  experiments (Fig. 5(c), Fig. 6(a)) and the Table 1 execution trace.

Groups removed from the active set are never re-activated (alternative (a) in
Section 3.1, the optimality-preserving choice; alternative (b) is available in
the reference implementation for the ablation benchmark).

One deliberate strengthening beyond the paper's pseudocode: a group sampled
to exhaustion freezes at its *exact* mean, and that frozen value remains an
obstacle - no active group may leave the active set while its interval still
covers a frozen exact mean.  Algorithm 1 never considers exhaustion; without
this rule a group could finalize on the wrong side of a fully-read
neighbor's exact average, silently breaking strict ordering on hard
instances (this is why the paper's real-data runs read *both* sides of every
conflicting pair in full).
"""

from __future__ import annotations

import numpy as np

from repro._util import check_nonnegative, check_probability
from repro.core.confidence import EpsilonSchedule
from repro.core.intervals import separated_equal_width_batch
from repro.core.types import GroupOutcome, OrderingResult, RoundSnapshot, Trace
from repro.engines.base import EngineRun, SamplingEngine

__all__ = ["run_ifocus"]

_DEFAULT_INITIAL_BATCH = 64
_DEFAULT_MAX_BATCH = 1 << 18


class _IFocusState:
    """Mutable per-run state for the batched executor."""

    def __init__(self, run: EngineRun, trace_every: int) -> None:
        k = run.k
        self.run = run
        self.k = k
        self.sizes = run.sizes()
        self.sums = np.zeros(k, dtype=np.float64)
        self.estimates = np.zeros(k, dtype=np.float64)
        self.samples = np.zeros(k, dtype=np.int64)
        self.half_widths = np.zeros(k, dtype=np.float64)
        self.finalized_round = np.zeros(k, dtype=np.int64)
        self.exhausted = np.zeros(k, dtype=bool)
        self.active = np.ones(k, dtype=bool)
        self.inactive_order: list[int] = []
        self.trace = Trace(every=trace_every) if trace_every > 0 else None

    def finalize(
        self,
        gid: int,
        estimate: float,
        round_m: int,
        half_width: float,
        exhausted: bool,
        batch_rounds_consumed: int,
    ) -> None:
        """Remove group ``gid`` from the active set at round ``round_m``."""
        self.active[gid] = False
        self.estimates[gid] = estimate
        self.samples[gid] += batch_rounds_consumed
        self.half_widths[gid] = half_width
        self.finalized_round[gid] = round_m
        self.exhausted[gid] = exhausted
        self.inactive_order.append(gid)
        self.run.charge(gid, batch_rounds_consumed)


def run_ifocus(
    engine: SamplingEngine,
    *,
    delta: float = 0.05,
    resolution: float = 0.0,
    kappa: float = 1.0,
    heuristic_factor: float = 1.0,
    without_replacement: bool = True,
    seed: int | np.random.Generator | None = None,
    trace_every: int = 0,
    initial_batch: int = _DEFAULT_INITIAL_BATCH,
    max_batch: int = _DEFAULT_MAX_BATCH,
    max_rounds: int | None = None,
) -> OrderingResult:
    """Run IFOCUS (or IFOCUS-R when ``resolution`` > 0) over an engine.

    Args:
        engine: a :class:`~repro.engines.base.SamplingEngine` over the target
            population.
        delta: failure probability; the output ordering is correct with
            probability >= 1 - delta (Theorem 3.5).
        resolution: minimal resolution r of Problem 2; groups whose true means
            are within r of each other need not be ordered, and the algorithm
            stops refining once eps < r/4.  0 disables the relaxation.
        kappa: geometric grid parameter of the epsilon schedule (paper uses 1).
        heuristic_factor: divide epsilon by this factor (Fig. 5 experiments;
            values > 1 void the guarantee).
        without_replacement: sample each group without replacement (requires
            group sizes; tighter epsilon; exhaustion finalizes a fully-read
            group at its exact mean).
        seed: RNG seed for the run's sampling streams.
        trace_every: record a snapshot every this many rounds (0 = no trace).
        initial_batch / max_batch: internal batching knobs; results are
            independent of them (asserted in tests).
        max_rounds: optional safety cap on the number of rounds; if reached,
            remaining active groups are finalized at their current estimates
            and ``params["truncated"]`` is set.

    Returns:
        An :class:`~repro.core.types.OrderingResult`.
    """
    check_probability(delta, "delta")
    check_nonnegative(resolution, "resolution")
    if initial_batch < 1 or max_batch < initial_batch:
        raise ValueError("need 1 <= initial_batch <= max_batch")
    variant = "ifocusr" if resolution > 0 else "ifocus"
    run = engine.open_run(seed, without_replacement=without_replacement)
    k = run.k
    schedule = EpsilonSchedule(
        k, delta, c=run.c, kappa=kappa, heuristic_factor=heuristic_factor
    )
    state = _IFocusState(run, trace_every)

    # Round m = 1: one sample per group to seed the estimates (Alg. 1 line 2).
    for gid in range(k):
        value = float(run.draw(gid, 1)[0])
        state.sums[gid] = value
        state.estimates[gid] = value
        run.charge(gid, 1)
    state.samples[:] = 1
    m = 1
    _maybe_trace_initial(state, schedule, without_replacement)

    batch = int(initial_batch)
    truncated = False
    while state.active.any():
        if max_rounds is not None and m >= max_rounds:
            truncated = True
            _truncate_active(state, schedule, m, without_replacement)
            break

        # Exhaustion pre-check: an active group with n_i == m has been read in
        # full; its running mean is the exact group mean.
        if without_replacement:
            for gid in np.flatnonzero(state.active & (state.sizes <= m)):
                state.finalize(
                    int(gid),
                    estimate=run.exact_mean(int(gid)),
                    round_m=m,
                    half_width=0.0,
                    exhausted=True,
                    batch_rounds_consumed=0,
                )
            if not state.active.any():
                break

        active_idx = np.flatnonzero(state.active)
        b_eff = batch
        if without_replacement:
            b_eff = min(b_eff, int(state.sizes[active_idx].min()) - m)
        if max_rounds is not None:
            b_eff = min(b_eff, max_rounds - m)
        b_eff = max(b_eff, 1)

        rounds = np.arange(m + 1, m + b_eff + 1, dtype=np.float64)
        blocks = np.stack([run.draw(int(g), b_eff) for g in active_idx], axis=1)
        csums = np.cumsum(blocks, axis=0) + state.sums[active_idx][None, :]
        prefix = csums / rounds[:, None]  # (b_eff, k_active): estimates per round

        consumed = _walk_batch(
            state,
            schedule,
            active_idx,
            rounds,
            prefix,
            resolution,
            without_replacement,
        )
        # Survivors consumed the whole batch; update their running state.
        survivors = np.flatnonzero(state.active)
        if survivors.size:
            # Map global gid -> column in this batch.
            col_of = {int(g): i for i, g in enumerate(active_idx)}
            cols = np.array([col_of[int(g)] for g in survivors], dtype=np.int64)
            state.sums[survivors] = csums[-1, cols]
            state.estimates[survivors] = prefix[-1, cols]
            state.samples[survivors] += b_eff
            for g in survivors:
                run.charge(int(g), b_eff)
        m += b_eff
        del consumed
        batch = min(batch * 2, max_batch)

    groups = [
        GroupOutcome(
            index=i,
            name=run.group_names()[i],
            estimate=float(state.estimates[i]),
            samples=int(state.samples[i]),
            half_width=float(state.half_widths[i]),
            exhausted=bool(state.exhausted[i]),
            finalized_round=int(state.finalized_round[i]),
        )
        for i in range(k)
    ]
    params = {
        "delta": delta,
        "resolution": resolution,
        "kappa": kappa,
        "heuristic_factor": heuristic_factor,
        "without_replacement": without_replacement,
        "c": run.c,
        "truncated": truncated,
    }
    # ``m`` may overshoot to the batch end when the last group finalizes
    # mid-batch; the number of rounds actually executed is the last
    # finalization round.
    rounds_executed = int(state.finalized_round.max())
    return OrderingResult(
        algorithm=variant,
        estimates=state.estimates.copy(),
        samples_per_group=state.samples.copy(),
        rounds=rounds_executed,
        groups=groups,
        inactive_order=state.inactive_order,
        trace=state.trace,
        params=params,
        stats=run.stats,
    )


def _n_max(state: _IFocusState, active_idx: np.ndarray, without_replacement: bool):
    if not without_replacement:
        return None
    return float(state.sizes[active_idx].max())


def _maybe_trace_initial(
    state: _IFocusState, schedule: EpsilonSchedule, without_replacement: bool
) -> None:
    if state.trace is None:
        return
    active_idx = np.flatnonzero(state.active)
    eps = float(schedule(1.0, _n_max(state, active_idx, without_replacement)))
    state.trace.append(
        RoundSnapshot(
            round_index=1,
            cumulative_samples=int(state.samples.sum()),
            active=tuple(int(g) for g in active_idx),
            estimates=state.estimates.copy(),
            epsilon=eps,
        )
    )


def _record_trace_rows(
    state: _IFocusState,
    rounds: np.ndarray,
    prefix: np.ndarray,
    live_cols: np.ndarray,
    active_gids: np.ndarray,
    row_from: int,
    row_to: int,
    eps_rows: np.ndarray,
) -> None:
    """Append snapshots for strided rounds in [row_from, row_to)."""
    trace = state.trace
    if trace is None:
        return
    every = trace.every
    for row in range(row_from, row_to):
        round_m = int(rounds[row])
        if round_m % every != 0:
            continue
        est = state.estimates.copy()
        est[active_gids] = prefix[row, live_cols]
        # ``state.samples`` for still-active groups holds the pre-batch count
        # (groups finalized earlier in this batch are already updated), so
        # adding (row+1) per live group gives the true cumulative count.
        cumulative = int(state.samples.sum()) + int((row + 1) * active_gids.size)
        trace.append(
            RoundSnapshot(
                round_index=round_m,
                cumulative_samples=cumulative,
                active=tuple(int(g) for g in active_gids),
                estimates=est,
                epsilon=float(eps_rows[row]),
            )
        )


def _walk_batch(
    state: _IFocusState,
    schedule: EpsilonSchedule,
    active_idx: np.ndarray,
    rounds: np.ndarray,
    prefix: np.ndarray,
    resolution: float,
    without_replacement: bool,
) -> int:
    """Process one pre-drawn batch; finalize groups at separation events.

    Returns the number of rows consumed (always the full batch; the return
    value exists for symmetry/debugging).
    """
    b_eff = rounds.shape[0]
    live = np.arange(active_idx.shape[0])  # columns still active
    # Exhausted groups are zero-width obstacles: an active group may not
    # leave while its interval still covers a frozen exact mean (otherwise
    # its final estimate could land on the wrong side of that exact value).
    frozen = state.estimates[state.exhausted]
    row = 0
    while row < b_eff and live.size > 0:
        gids = active_idx[live]
        n_max = _n_max(state, gids, without_replacement)
        eps_seg = np.asarray(schedule(rounds[row:], n_max), dtype=np.float64)

        res_row = None
        if resolution > 0.0:
            hits = np.flatnonzero(eps_seg < resolution / 4.0)
            if hits.size:
                res_row = int(hits[0])

        sep = separated_equal_width_batch(prefix[row:, live], eps_seg)
        if frozen.size:
            seg = prefix[row:, live]
            for value in frozen:  # few frozen values; avoids a 3-D temp
                sep &= np.abs(seg - value) > eps_seg[:, None]
        sep_rows = np.flatnonzero(sep.any(axis=1))
        sep_row = int(sep_rows[0]) if sep_rows.size else None

        if sep_row is None and res_row is None:
            _record_trace_rows(
                state, rounds, prefix, live, gids, row, b_eff,
                _full_eps(eps_seg, row, b_eff),
            )
            row = b_eff
            break

        event = min(r for r in (sep_row, res_row) if r is not None)
        abs_row = row + event
        _record_trace_rows(
            state, rounds, prefix, live, gids, row, abs_row + 1,
            _full_eps(eps_seg, row, b_eff),
        )
        round_m = int(rounds[abs_row])
        eps_here = float(eps_seg[event])

        if res_row is not None and res_row <= (sep_row if sep_row is not None else res_row):
            # Resolution termination: finalize every remaining active group.
            for pos in live:
                gid = int(active_idx[pos])
                state.finalize(
                    gid,
                    estimate=float(prefix[abs_row, pos]),
                    round_m=round_m,
                    half_width=eps_here,
                    exhausted=False,
                    batch_rounds_consumed=abs_row + 1,
                )
            live = np.empty(0, dtype=np.int64)
        else:
            newly = np.flatnonzero(sep[event])
            for j in newly:
                pos = int(live[j])
                gid = int(active_idx[pos])
                state.finalize(
                    gid,
                    estimate=float(prefix[abs_row, pos]),
                    round_m=round_m,
                    half_width=eps_here,
                    exhausted=False,
                    batch_rounds_consumed=abs_row + 1,
                )
            live = np.delete(live, newly)
        row = abs_row + 1
    return row


def _full_eps(eps_seg: np.ndarray, row: int, b_eff: int) -> np.ndarray:
    """Re-expand a segment epsilon array to batch-row indexing for tracing."""
    out = np.empty(b_eff, dtype=np.float64)
    out[row:] = eps_seg
    if row > 0:
        out[:row] = np.nan
    return out


def _truncate_active(
    state: _IFocusState,
    schedule: EpsilonSchedule,
    m: int,
    without_replacement: bool,
) -> None:
    """Finalize all remaining active groups at round ``m`` (max_rounds cap)."""
    active_idx = np.flatnonzero(state.active)
    n_max = _n_max(state, active_idx, without_replacement)
    eps = float(schedule(float(max(m, 1)), n_max))
    for gid in active_idx:
        state.finalize(
            int(gid),
            estimate=float(state.estimates[gid]) if m > 1 else float(state.sums[gid]),
            round_m=m,
            half_width=eps,
            exhausted=False,
            batch_rounds_consumed=0,
        )
