"""Incremental mean estimators.

The algorithms maintain running means nu_i <- ((m-1)/m) nu_i + x/m (Alg. 1
line 9).  :class:`RunningMean` implements this numerically stably and supports
batched extension, which the vectorized executor relies on: extending by a
block of samples and then asking for the mean *after j of them* must agree
exactly with feeding them one at a time.
"""

from __future__ import annotations

import numpy as np

__all__ = ["RunningMean", "prefix_means"]


def prefix_means(prior_sum: float, prior_count: int, block: np.ndarray) -> np.ndarray:
    """Running means after each element of ``block`` given prior state.

    Returns an array r where r[j] is the mean of the first
    ``prior_count + j + 1`` samples ((prior_sum + cumsum(block)[j]) / count).
    """
    block = np.asarray(block, dtype=np.float64)
    csum = np.cumsum(block) + prior_sum
    counts = prior_count + np.arange(1, block.shape[0] + 1, dtype=np.float64)
    return csum / counts


class RunningMean:
    """A running mean over a stream of bounded values.

    Keeps (sum, count); exact for the bounded-value, modest-count regime of
    the paper (values in [0, c], counts <= 1e10), where float64 accumulation
    error is negligible relative to the confidence-interval widths.
    """

    __slots__ = ("_sum", "_count")

    def __init__(self, total: float = 0.0, count: int = 0) -> None:
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        if count == 0 and total != 0.0:
            raise ValueError("cannot have a nonzero sum with zero samples")
        self._sum = float(total)
        self._count = int(count)

    @property
    def count(self) -> int:
        return self._count

    @property
    def total(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        if self._count == 0:
            raise ValueError("mean of an empty RunningMean is undefined")
        return self._sum / self._count

    def add(self, x: float) -> float:
        """Add one observation; return the updated mean."""
        self._sum += float(x)
        self._count += 1
        return self.mean

    def extend(self, block: np.ndarray) -> float:
        """Add a block of observations; return the updated mean."""
        block = np.asarray(block, dtype=np.float64)
        self._sum += float(block.sum())
        self._count += int(block.shape[0])
        return self.mean

    def extend_prefix(self, block: np.ndarray) -> np.ndarray:
        """Add a block and return the running mean after *each* element.

        Equivalent to calling :meth:`add` per element and recording the mean
        each time, but vectorized.
        """
        out = prefix_means(self._sum, self._count, block)
        self.extend(block)
        return out

    def rewind_to(self, count: int, total: float) -> None:
        """Reset to an earlier (count, sum) state (used on batch rollback)."""
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        self._sum = float(total)
        self._count = int(count)

    def copy(self) -> "RunningMean":
        return RunningMean(self._sum, self._count)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        mean = self._sum / self._count if self._count else float("nan")
        return f"RunningMean(count={self._count}, mean={mean:.6g})"
