"""Pack engines/populations/tables into segment arrays - and map them back.

This is the serializer layer between the live objects the planner builds
(:class:`~repro.needletail.engine.NeedletailEngine`, materialized
:class:`~repro.data.population.Population` objects, row-store
:class:`~repro.needletail.table.Table` objects) and the flat arrays a
:class:`~repro.storage.store.Store` persists as segments.  It mirrors the
packing discipline of :func:`repro.engines.shm.build_shard_payloads`: bitmap
words concatenate into one uint64 array with per-group word ranges, group
values concatenate into one float64 array with per-group offsets, and the
deduped row-store value column is stored exactly once.

The reverse direction constructs *zero-copy* over read-only ``np.memmap``
arrays: :meth:`BitVector.from_mapped` adopts each group's word slice plus
its persisted cumulative-popcount slice (the rank/select acceleration
table), so a :class:`MappedNeedletailEngine` answers selects without ever
re-scanning - and without a :class:`BitmapIndex` rebuild.  Mapped engines
are bit-identical to RAM-built ones by construction: identical words mean
identical select results, and ranks come from per-run seeded permutations
that never look at the selector.
"""

from __future__ import annotations

import numpy as np

from repro.data.population import MaterializedGroup, Population
from repro.engines.base import CostModel, SamplingEngine
from repro.errors import StorageError
from repro.needletail.bitvector import BitVector
from repro.needletail.cost import NeedletailCostModel
from repro.needletail.engine import BUILD_COUNTS, IndexedGroup, base_bitvector
from repro.needletail.table import Column, Table

__all__ = [
    "MappedNeedletailEngine",
    "pack_index",
    "unpack_index",
    "pack_population",
    "unpack_population",
    "pack_table",
    "unpack_table",
]


class MappedNeedletailEngine(SamplingEngine):
    """A NEEDLETAIL engine whose index words live in mapped storage segments.

    Behaviourally identical to :class:`NeedletailEngine` - same
    :class:`IndexedGroup` retrieval path (rank -> select -> row-store
    fetch), same default cost model - but constructed from persisted
    arrays in O(mapped pages touched), with no :class:`BitmapIndex`
    build.  ``BUILD_COUNTS["mapped"]`` counts these constructions; the
    warm-reopen tests assert they replace (not add to) "needletail" ones.
    """

    def __init__(
        self,
        population: Population,
        *,
        group_by: str,
        value_column: str,
        row_bytes: int,
        cost_model: CostModel | None = None,
    ) -> None:
        BUILD_COUNTS["mapped"] += 1
        self.group_by = group_by
        self.value_column = value_column
        super().__init__(
            population,
            cost_model=cost_model if cost_model is not None else NeedletailCostModel(),
            row_bytes=int(row_bytes),
        )


# ---------------------------------------------------------------------------
# NEEDLETAIL index <-> segments
# ---------------------------------------------------------------------------


def pack_index(engine) -> tuple[dict, dict[str, np.ndarray]] | None:
    """Flatten a built engine's index into (meta, arrays), or None.

    Packs only engines whose every group selector exposes flat bitmap words
    (:func:`base_bitvector` - the same shareability predicate
    :mod:`repro.engines.shm` uses) and whose groups share one value column.
    Arrays: ``words`` (uint64, all groups' words concatenated), ``cum``
    (int64 per-group cumulative popcounts, slice-aligned with ``words`` -
    the persisted rank/select acceleration table), ``values`` (the deduped
    row-store value column).  Meta records each group's name and
    ``[word_lo, word_hi, length]`` window plus ``c`` and ``row_bytes``.
    """
    groups = engine.population.groups
    bases = [base_bitvector(g._selector) for g in groups]
    if any(base is None for base in bases):
        return None
    values = groups[0]._values
    if not all(g._values is values for g in groups):
        return None
    word_arrays = [np.asarray(base.words) for base in bases]
    word_counts = [w.shape[0] for w in word_arrays]
    offsets = np.concatenate([[0], np.cumsum(word_counts)]).astype(np.int64)
    specs = [
        [g.name, int(offsets[i]), int(offsets[i + 1]), len(bases[i])]
        for i, g in enumerate(groups)
    ]
    words = np.concatenate(word_arrays) if word_arrays else np.zeros(0, dtype=np.uint64)
    pops = np.bitwise_count(words).astype(np.int64)
    cum = np.zeros(words.shape[0], dtype=np.int64)
    for _, lo, hi, _length in specs:
        np.cumsum(pops[lo:hi], out=cum[lo:hi])
    meta = {
        "groups": specs,
        "c": float(engine.population.c),
        "row_bytes": int(engine.row_bytes),
        "population_name": engine.population.name,
    }
    arrays = {
        "words": words,
        "cum": cum,
        "values": np.asarray(values, dtype=np.float64),
    }
    return meta, arrays


def unpack_index(
    meta: dict,
    arrays: dict[str, np.ndarray],
    *,
    group_by: str,
    value_column: str,
) -> MappedNeedletailEngine:
    """Rebuild a sampling engine over mapped index segments (zero-copy)."""
    try:
        words, cum, values = arrays["words"], arrays["cum"], arrays["values"]
        specs, c, row_bytes = meta["groups"], float(meta["c"]), int(meta["row_bytes"])
    except KeyError as exc:
        raise StorageError(f"needletail build is missing {exc} - rebuild the store") from exc
    groups: list[IndexedGroup] = []
    for name, lo, hi, length in specs:
        selector = BitVector.from_mapped(words[lo:hi], int(length), cum[lo:hi])
        groups.append(IndexedGroup(str(name), selector, values))
    population = Population(
        groups=groups, c=c, name=str(meta.get("population_name", "population"))
    )
    return MappedNeedletailEngine(
        population, group_by=group_by, value_column=value_column, row_bytes=row_bytes
    )


# ---------------------------------------------------------------------------
# Materialized population <-> segments
# ---------------------------------------------------------------------------


def pack_population(population: Population) -> tuple[dict, dict[str, np.ndarray]] | None:
    """Flatten a fully materialized population, or None if any group isn't.

    Virtual (distribution-backed) groups have nothing to persist - their
    sources rebuild in O(1) anyway - and indexed groups are persisted as
    index builds instead, so only :class:`MaterializedGroup` populations
    pack.  Layout matches ``_MaterializedSpec`` in the shm packing: one
    concatenated ``values`` array plus per-group ``[name, lo, hi]`` windows.
    """
    groups = population.groups
    if not all(isinstance(g, MaterializedGroup) for g in groups):
        return None
    sizes = [g.size for g in groups]
    offsets = np.concatenate([[0], np.cumsum(sizes)]).astype(np.int64)
    specs = [
        [g.name, int(offsets[i]), int(offsets[i + 1])] for i, g in enumerate(groups)
    ]
    values = np.concatenate([np.asarray(g.values, dtype=np.float64) for g in groups])
    meta = {"groups": specs, "c": float(population.c), "name": population.name}
    return meta, {"values": values}


def unpack_population(meta: dict, arrays: dict[str, np.ndarray]) -> Population:
    """Rebuild a materialized population over a mapped values segment."""
    try:
        values = arrays["values"]
        specs, c = meta["groups"], float(meta["c"])
    except KeyError as exc:
        raise StorageError(f"population build is missing {exc} - rebuild the store") from exc
    groups = [MaterializedGroup(str(name), values[lo:hi]) for name, lo, hi in specs]
    return Population(groups=groups, c=c, name=str(meta.get("name", "population")))


# ---------------------------------------------------------------------------
# Row-store table <-> segments
# ---------------------------------------------------------------------------


def pack_table(table: Table) -> tuple[dict, dict[str, np.ndarray]] | None:
    """Flatten a row-store table into one segment array per column.

    Object-dtype columns cannot be stored (no stable byte form); such
    tables return None and stay memory-only.
    """
    columns = []
    arrays: dict[str, np.ndarray] = {}
    for i, name in enumerate(table.column_names):
        values = np.asarray(table.column(name))
        if values.dtype.hasobject:
            return None
        width = table._columns[name].byte_width
        columns.append([name, int(width)])
        arrays[f"col{i}"] = values
    meta = {"columns": columns, "num_rows": int(table.num_rows)}
    return meta, arrays


def unpack_table(meta: dict, arrays: dict[str, np.ndarray], name: str) -> Table:
    """Rebuild a table over mapped column segments (zero-copy)."""
    try:
        specs = meta["columns"]
        columns = [
            Column(str(col_name), arrays[f"col{i}"], int(width))
            for i, (col_name, width) in enumerate(specs)
        ]
    except KeyError as exc:
        raise StorageError(f"table build is missing {exc} - rebuild the store") from exc
    return Table(str(name), columns)
