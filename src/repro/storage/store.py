"""The persistent catalog: SQLite rows over a directory of segment files.

A store is a directory::

    <store>/catalog.sqlite     the catalog database (WAL mode)
    <store>/segments/*.seg     one segment file per persisted array
    <store>/quarantine/*.seg   segments pulled from corrupt builds (forensics)

The database holds three kinds of rows, keyed the same way the in-memory
:class:`~repro.catalog.catalog.Catalog` keys its caches:

* ``tables`` - one row per bound name: source kind, schema, row count, a
  JSON *binding* sufficient to rebuild the source on re-open (path +
  options for file sources, family + params for synthetic ones), and the
  source *fingerprint* that stale-cache checks compare against.
* ``builds`` - one row per cached build, ``UNIQUE(table_name, kind,
  build_key)`` where ``build_key`` serializes the same coordinates the
  in-memory caches hash (group column, value column, predicate, value
  bound).  Dropping a table cascades to its builds and their segments.
* ``segments`` - one row per segment file a build owns (role, filename,
  dtype/shape/nbytes/crc32 duplicated from the file header so a swapped
  or truncated file is caught against the catalog, not just against
  itself).
* ``quarantined`` - tombstones for builds pulled by
  :meth:`Store.quarantine_build`: which build rotted, why, and where its
  files went.  Quarantined files move to ``quarantine/`` (never served,
  never swept by ``gc()``) so an operator can inspect the damage.
* ``checkpoints`` - small JSON state rows for resumable consumers
  (streaming subscriptions persist their window cursor here), keyed by a
  caller-chosen id.

Durability discipline: segment files land first (each atomically, via the
temp-file + rename in :mod:`repro.storage.segment`) under fresh random
names, then one transaction replaces the build row; files the transaction
orphaned are unlinked afterwards (best effort - ``gc()`` sweeps what a
crash leaves behind).  A crash at *any* point therefore leaves the store
openable with the partial build simply absent.

Connection settings follow the usual server recipe: WAL journal (readers
don't block the writer), ``synchronous=NORMAL`` (safe with WAL),
``busy_timeout`` for cross-process politeness, foreign keys on so cascades
actually cascade.
"""

from __future__ import annotations

import json
import os
import sqlite3
import threading
import time
import uuid
import zlib

import numpy as np

from repro.errors import StorageError
from repro.storage.segment import read_segment, verify_segment, write_segment

__all__ = ["Store", "STORE_FORMAT_VERSION"]

STORE_FORMAT_VERSION = 1

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS tables (
    name        TEXT PRIMARY KEY,
    kind        TEXT NOT NULL,
    schema_json TEXT NOT NULL,
    row_count   INTEGER,
    source_json TEXT NOT NULL,
    fingerprint TEXT,
    created     REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS builds (
    id          INTEGER PRIMARY KEY,
    table_name  TEXT NOT NULL REFERENCES tables(name) ON DELETE CASCADE,
    kind        TEXT NOT NULL,
    build_key   TEXT NOT NULL,
    fingerprint TEXT,
    meta_json   TEXT NOT NULL,
    created     REAL NOT NULL,
    UNIQUE (table_name, kind, build_key)
);
CREATE TABLE IF NOT EXISTS segments (
    id       INTEGER PRIMARY KEY,
    build_id INTEGER NOT NULL REFERENCES builds(id) ON DELETE CASCADE,
    role     TEXT NOT NULL,
    filename TEXT NOT NULL UNIQUE,
    dtype    TEXT NOT NULL,
    shape_json TEXT NOT NULL,
    nbytes   INTEGER NOT NULL,
    crc32    INTEGER NOT NULL
);
CREATE TABLE IF NOT EXISTS quarantined (
    id         INTEGER PRIMARY KEY,
    table_name TEXT NOT NULL,
    kind       TEXT NOT NULL,
    build_key  TEXT NOT NULL,
    filename   TEXT NOT NULL,
    reason     TEXT NOT NULL,
    created    REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS checkpoints (
    id           TEXT PRIMARY KEY,
    kind         TEXT NOT NULL,
    payload_json TEXT NOT NULL,
    state_json   TEXT NOT NULL,
    updated      REAL NOT NULL
);
"""


class Store:
    """An on-disk segment store plus its SQLite catalog (thread-safe)."""

    def __init__(self, path: str | os.PathLike) -> None:
        self.path = os.fspath(path)
        self.segments_dir = os.path.join(self.path, "segments")
        self.quarantine_dir = os.path.join(self.path, "quarantine")
        os.makedirs(self.segments_dir, exist_ok=True)
        db_path = os.path.join(self.path, "catalog.sqlite")
        try:
            self._db = sqlite3.connect(db_path, check_same_thread=False)
        except sqlite3.Error as exc:
            raise StorageError(f"{db_path}: cannot open store catalog ({exc})") from exc
        self._db.row_factory = sqlite3.Row
        self._lock = threading.RLock()
        self._write_index = 0  # storage.write_segment fault-site coordinate
        self._read_index = 0  # storage.segment_read fault-site coordinate
        with self._lock:
            cur = self._db
            cur.execute("PRAGMA journal_mode=WAL")
            cur.execute("PRAGMA synchronous=NORMAL")
            cur.execute("PRAGMA foreign_keys=ON")
            cur.execute("PRAGMA busy_timeout=30000")
            cur.executescript(_SCHEMA)
            row = cur.execute(
                "SELECT value FROM meta WHERE key = 'format_version'"
            ).fetchone()
            if row is None:
                cur.execute(
                    "INSERT INTO meta (key, value) VALUES ('format_version', ?)",
                    (str(STORE_FORMAT_VERSION),),
                )
                cur.commit()
            elif int(row["value"]) != STORE_FORMAT_VERSION:
                raise StorageError(
                    f"{self.path}: store format version {row['value']} is not "
                    f"readable by this build (version {STORE_FORMAT_VERSION})"
                )

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        with self._lock:
            self._db.close()

    def __enter__(self) -> "Store":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _segment_path(self, filename: str) -> str:
        return os.path.join(self.segments_dir, filename)

    # -- table bindings -----------------------------------------------------

    def bind_table(
        self,
        name: str,
        *,
        kind: str,
        schema_json: str,
        row_count: int | None,
        source_json: str,
        fingerprint: str | None,
    ) -> None:
        """Record (or replace) the binding row for ``name``."""
        with self._lock:
            self._db.execute(
                "INSERT INTO tables (name, kind, schema_json, row_count, "
                "source_json, fingerprint, created) VALUES (?, ?, ?, ?, ?, ?, ?) "
                "ON CONFLICT(name) DO UPDATE SET kind=excluded.kind, "
                "schema_json=excluded.schema_json, row_count=excluded.row_count, "
                "source_json=excluded.source_json, "
                "fingerprint=excluded.fingerprint, created=excluded.created",
                (name, kind, schema_json, row_count, source_json, fingerprint,
                 time.time()),
            )
            self._db.commit()

    def binding(self, name: str) -> dict | None:
        with self._lock:
            row = self._db.execute(
                "SELECT * FROM tables WHERE name = ?", (name,)
            ).fetchone()
        return dict(row) if row is not None else None

    def bindings(self) -> list[dict]:
        with self._lock:
            rows = self._db.execute("SELECT * FROM tables ORDER BY name").fetchall()
        return [dict(r) for r in rows]

    def unbind_table(self, name: str) -> None:
        """Drop the binding and every build under it (files included)."""
        with self._lock:
            orphans = self._build_files("table_name = ?", (name,))
            self._db.execute("DELETE FROM tables WHERE name = ?", (name,))
            self._db.commit()
        self._unlink(orphans)

    # -- builds -------------------------------------------------------------

    def save_build(
        self,
        table: str,
        kind: str,
        build_key: str,
        *,
        fingerprint: str | None,
        meta: dict,
        arrays: dict[str, np.ndarray],
    ) -> None:
        """Persist one cached build, replacing any previous one at its key.

        Segment files are written first (atomically each); the catalog sees
        the new build in a single transaction at the end.  On any failure
        the already-written new files are unlinked and the old build stays
        intact - an interrupted save never leaves a partial build visible.
        """
        written: list[tuple[str, str, object]] = []  # (role, filename, info)
        try:
            for role, array in arrays.items():
                filename = f"{uuid.uuid4().hex}.seg"
                with self._lock:
                    index = self._write_index
                    self._write_index += 1
                info = write_segment(self._segment_path(filename), array, index=index)
                written.append((role, filename, info))
        except BaseException:
            self._unlink([f for _, f, _ in written])
            raise
        with self._lock:
            orphans = self._build_files(
                "table_name = ? AND kind = ? AND build_key = ?",
                (table, kind, build_key),
            )
            self._db.execute(
                "DELETE FROM builds WHERE table_name = ? AND kind = ? AND build_key = ?",
                (table, kind, build_key),
            )
            cur = self._db.execute(
                "INSERT INTO builds (table_name, kind, build_key, fingerprint, "
                "meta_json, created) VALUES (?, ?, ?, ?, ?, ?)",
                (table, kind, build_key, fingerprint, json.dumps(meta), time.time()),
            )
            build_id = cur.lastrowid
            for role, filename, info in written:
                self._db.execute(
                    "INSERT INTO segments (build_id, role, filename, dtype, "
                    "shape_json, nbytes, crc32) VALUES (?, ?, ?, ?, ?, ?, ?)",
                    (build_id, role, filename, info.dtype,
                     json.dumps(list(info.shape)), info.nbytes, info.crc32),
                )
            self._db.commit()
        self._unlink(orphans)

    def load_build(
        self,
        table: str,
        kind: str,
        build_key: str,
        *,
        fingerprint: str | None = None,
    ) -> tuple[dict, dict[str, np.ndarray]] | None:
        """Map a cached build back, or None on miss / fingerprint drift.

        Segment arrays come back as read-only ``np.memmap`` views; each is
        cross-checked (dtype, shape) against its catalog row so a swapped
        file raises :class:`StorageError` instead of feeding garbage to a
        query, and each payload's crc32 is verified against the catalog row
        so a flipped bit is detected *at open time* (the self-healing
        catalog's quarantine trigger).  The crc pass reads every payload
        byte once - it doubles as page-cache warming for the map.
        """
        with self._lock:
            build = self._db.execute(
                "SELECT * FROM builds WHERE table_name = ? AND kind = ? AND build_key = ?",
                (table, kind, build_key),
            ).fetchone()
            if build is None:
                return None
            if fingerprint is not None and build["fingerprint"] != fingerprint:
                return None
            seg_rows = self._db.execute(
                "SELECT * FROM segments WHERE build_id = ?", (build["id"],)
            ).fetchall()
        arrays: dict[str, np.ndarray] = {}
        for row in seg_rows:
            path = self._segment_path(row["filename"])
            with self._lock:
                index = self._read_index
                self._read_index += 1
            try:
                array = read_segment(path, index=index)
            except OSError as exc:
                raise StorageError(f"{path}: cannot read segment ({exc})") from exc
            if array.dtype.str != row["dtype"] or list(array.shape) != json.loads(
                row["shape_json"]
            ):
                raise StorageError(
                    f"{path}: segment header disagrees with the catalog "
                    f"(file {array.dtype.str}{list(array.shape)}, catalog "
                    f"{row['dtype']}{json.loads(row['shape_json'])})"
                )
            if zlib.crc32(array) != row["crc32"]:
                raise StorageError(
                    f"{path}: payload checksum disagrees with the catalog "
                    f"(stored {row['crc32']:#010x}) - the segment is corrupt"
                )
            arrays[row["role"]] = array
        return json.loads(build["meta_json"]), arrays

    def drop_builds(self, table: str, kind: str | None = None) -> int:
        """Delete cached builds (and their files) for one bound name."""
        with self._lock:
            if kind is None:
                where, params = "table_name = ?", (table,)
            else:
                where, params = "table_name = ? AND kind = ?", (table, kind)
            orphans = self._build_files(where, params)
            cur = self._db.execute(f"DELETE FROM builds WHERE {where}", params)
            self._db.commit()
        self._unlink(orphans)
        return cur.rowcount

    def builds(self, table: str | None = None) -> list[dict]:
        with self._lock:
            if table is None:
                rows = self._db.execute(
                    "SELECT * FROM builds ORDER BY table_name, kind, build_key"
                ).fetchall()
            else:
                rows = self._db.execute(
                    "SELECT * FROM builds WHERE table_name = ? "
                    "ORDER BY kind, build_key",
                    (table,),
                ).fetchall()
        return [dict(r) for r in rows]

    # -- maintenance --------------------------------------------------------

    def ls(self) -> list[dict]:
        """One summary row per bound table: builds, segments, bytes."""
        with self._lock:
            rows = self._db.execute(
                "SELECT t.name, t.kind, t.row_count, t.fingerprint, "
                "COUNT(DISTINCT b.id) AS builds, COUNT(s.id) AS segments, "
                "COALESCE(SUM(s.nbytes), 0) AS bytes "
                "FROM tables t "
                "LEFT JOIN builds b ON b.table_name = t.name "
                "LEFT JOIN segments s ON s.build_id = b.id "
                "GROUP BY t.name ORDER BY t.name"
            ).fetchall()
        return [dict(r) for r in rows]

    def verify(self) -> int:
        """Checksum every catalogued segment; raise on the first failures.

        Returns the number of segments checked when all pass.  Failures
        collect into one :class:`StorageError` naming every corrupt file,
        so an operator sees the full damage in one pass.
        """
        with self._lock:
            rows = self._db.execute(
                "SELECT filename, dtype, shape_json FROM segments ORDER BY filename"
            ).fetchall()
        problems: list[str] = []
        for row in rows:
            path = self._segment_path(row["filename"])
            try:
                info = verify_segment(path)
            except StorageError as exc:
                problems.append(str(exc))
                continue
            if info.dtype != row["dtype"] or list(info.shape) != json.loads(
                row["shape_json"]
            ):
                problems.append(f"{path}: segment header disagrees with the catalog")
        if problems:
            raise StorageError(
                f"store verification failed ({len(problems)} of {len(rows)} "
                "segments):\n  " + "\n  ".join(problems)
            )
        return len(rows)

    def gc(self) -> list[str]:
        """Remove segment files the catalog doesn't own (incl. temp orphans).

        Only ``segments/`` is swept; files in ``quarantine/`` are operator
        forensics and are never touched.
        """
        with self._lock:
            rows = self._db.execute("SELECT filename FROM segments").fetchall()
            known = {row["filename"] for row in rows}
            removed = []
            for entry in sorted(os.listdir(self.segments_dir)):
                if entry in known:
                    continue
                try:
                    os.unlink(os.path.join(self.segments_dir, entry))
                    removed.append(entry)
                except OSError:
                    pass
        return removed

    # -- quarantine ---------------------------------------------------------

    def quarantine_build(
        self, table: str, kind: str, build_key: str, *, reason: str
    ) -> list[str]:
        """Pull one corrupt build out of service; returns its filenames.

        The build row is deleted (so the next lookup is a clean miss that
        triggers a cold rebuild), each of its segment files moves to
        ``quarantine/`` for forensics, and a tombstone row per file records
        what rotted and why.  A file that is already gone still gets its
        tombstone - a missing segment is just another corruption shape.
        Idempotent: quarantining an absent build is a no-op.
        """
        with self._lock:
            build = self._db.execute(
                "SELECT * FROM builds WHERE table_name = ? AND kind = ? "
                "AND build_key = ?",
                (table, kind, build_key),
            ).fetchone()
            if build is None:
                return []
            filenames = self._build_files("b.id = ?", (build["id"],))
            os.makedirs(self.quarantine_dir, exist_ok=True)
            for filename in filenames:
                try:
                    os.replace(
                        self._segment_path(filename),
                        os.path.join(self.quarantine_dir, filename),
                    )
                except OSError:
                    pass  # already missing: that *is* the corruption
                self._db.execute(
                    "INSERT INTO quarantined (table_name, kind, build_key, "
                    "filename, reason, created) VALUES (?, ?, ?, ?, ?, ?)",
                    (table, kind, build_key, filename, reason, time.time()),
                )
            self._db.execute("DELETE FROM builds WHERE id = ?", (build["id"],))
            self._db.commit()
        return filenames

    def quarantined(self) -> list[dict]:
        """Every quarantine tombstone, oldest first."""
        with self._lock:
            rows = self._db.execute(
                "SELECT * FROM quarantined ORDER BY id"
            ).fetchall()
        return [dict(r) for r in rows]

    def repair(self) -> dict:
        """Quarantine every corrupt build, then sweep orphans - in one pass.

        This automates the advice ``verify_segment``'s error message gives a
        human: any build with a failing segment (bad checksum, structural
        damage, header/catalog drift, missing file) is quarantined whole,
        then ``gc()`` removes unowned files (including ``.tmp`` crash
        leftovers).  Unlike :meth:`verify` this never raises on corruption -
        it acts on it; only an unreadable catalog propagates.

        Returns ``{"checked", "quarantined_builds", "quarantined_files",
        "removed_orphans"}``.
        """
        with self._lock:
            rows = self._db.execute(
                "SELECT s.filename, s.dtype, s.shape_json, b.table_name, "
                "b.kind, b.build_key FROM segments s "
                "JOIN builds b ON s.build_id = b.id ORDER BY s.filename"
            ).fetchall()
        checked = len(rows)
        corrupt: dict[tuple[str, str, str], str] = {}
        for row in rows:
            coord = (row["table_name"], row["kind"], row["build_key"])
            if coord in corrupt:
                continue  # the whole build goes; no need to scan its peers
            path = self._segment_path(row["filename"])
            try:
                info = verify_segment(path)
            except StorageError as exc:
                corrupt[coord] = str(exc)
                continue
            if info.dtype != row["dtype"] or list(info.shape) != json.loads(
                row["shape_json"]
            ):
                corrupt[coord] = (
                    f"{path}: segment header disagrees with the catalog"
                )
        quarantined_files: list[str] = []
        for (table, kind, build_key), reason in corrupt.items():
            quarantined_files.extend(
                self.quarantine_build(table, kind, build_key, reason=reason)
            )
        return {
            "checked": checked,
            "quarantined_builds": len(corrupt),
            "quarantined_files": quarantined_files,
            "removed_orphans": self.gc(),
        }

    # -- checkpoints --------------------------------------------------------

    def save_checkpoint(
        self, checkpoint_id: str, *, kind: str, payload: dict, state: dict
    ) -> None:
        """Upsert one resumable-consumer checkpoint row.

        ``payload`` is the static description (what to restart - spec, seed,
        tenant); ``state`` is the moving cursor (what was already emitted).
        Rows are tiny JSON - one SQLite upsert per window close is the whole
        write cost of durable subscriptions.
        """
        with self._lock:
            self._db.execute(
                "INSERT INTO checkpoints (id, kind, payload_json, state_json, "
                "updated) VALUES (?, ?, ?, ?, ?) "
                "ON CONFLICT(id) DO UPDATE SET kind=excluded.kind, "
                "payload_json=excluded.payload_json, "
                "state_json=excluded.state_json, updated=excluded.updated",
                (checkpoint_id, kind, json.dumps(payload, sort_keys=True),
                 json.dumps(state, sort_keys=True), time.time()),
            )
            self._db.commit()

    def load_checkpoint(self, checkpoint_id: str) -> tuple[dict, dict] | None:
        """``(payload, state)`` for one checkpoint id, or None."""
        with self._lock:
            row = self._db.execute(
                "SELECT * FROM checkpoints WHERE id = ?", (checkpoint_id,)
            ).fetchone()
        if row is None:
            return None
        return json.loads(row["payload_json"]), json.loads(row["state_json"])

    def checkpoints(self, kind: str | None = None) -> list[dict]:
        """Checkpoint rows (payload/state still JSON text), oldest first."""
        with self._lock:
            if kind is None:
                rows = self._db.execute(
                    "SELECT * FROM checkpoints ORDER BY updated"
                ).fetchall()
            else:
                rows = self._db.execute(
                    "SELECT * FROM checkpoints WHERE kind = ? ORDER BY updated",
                    (kind,),
                ).fetchall()
        return [dict(r) for r in rows]

    def delete_checkpoint(self, checkpoint_id: str) -> bool:
        with self._lock:
            cur = self._db.execute(
                "DELETE FROM checkpoints WHERE id = ?", (checkpoint_id,)
            )
            self._db.commit()
        return cur.rowcount > 0

    # -- internals ----------------------------------------------------------

    def _build_files(self, where: str, params: tuple) -> list[str]:
        rows = self._db.execute(
            "SELECT s.filename FROM segments s JOIN builds b ON s.build_id = b.id "
            f"WHERE {where}",
            params,
        ).fetchall()
        return [row["filename"] for row in rows]

    def _unlink(self, filenames: list[str]) -> None:
        for filename in filenames:
            try:
                os.unlink(self._segment_path(filename))
            except OSError:
                pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Store({self.path!r})"
