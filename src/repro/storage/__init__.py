"""Durable storage tier: mmap'd NEEDLETAIL segments + a persistent catalog.

Three layers, bottom-up:

* :mod:`repro.storage.segment` - the on-disk format for exactly one ndarray
  (versioned header, crc32, 64-byte-aligned payload, atomic temp-file +
  rename writes, zero-copy ``np.memmap`` reads);
* :mod:`repro.storage.store` - a directory of segments plus a SQLite (WAL)
  catalog of table bindings and cached builds, keyed the same way the
  in-memory :class:`~repro.catalog.Catalog` keys its caches;
* :mod:`repro.storage.mapped` / :mod:`repro.storage.durable` - the
  serializers between live engine objects and segment arrays, and the
  :class:`DurableCatalog` that answers cache lookups from disk (O(1)
  re-open across restarts, bit-identical query results).

Open a durable session with ``repro.connect(store="path/to/store")``;
maintain a store with ``repro store build|ls|verify|gc``.
"""

from repro.storage.durable import DurableCatalog
from repro.storage.mapped import (
    MappedNeedletailEngine,
    pack_index,
    pack_population,
    pack_table,
    unpack_index,
    unpack_population,
    unpack_table,
)
from repro.storage.segment import (
    FORMAT_VERSION,
    MAGIC,
    SegmentInfo,
    read_segment,
    verify_segment,
    write_segment,
)
from repro.storage.store import STORE_FORMAT_VERSION, Store

__all__ = [
    "DurableCatalog",
    "Store",
    "STORE_FORMAT_VERSION",
    "MappedNeedletailEngine",
    "pack_index",
    "unpack_index",
    "pack_population",
    "unpack_population",
    "pack_table",
    "unpack_table",
    "MAGIC",
    "FORMAT_VERSION",
    "SegmentInfo",
    "write_segment",
    "read_segment",
    "verify_segment",
]
