"""The on-disk segment format: one ndarray per file, mmap-read zero-copy.

A segment is the durable form of exactly one array the engines already
share through :mod:`repro.engines.shm` - bitmap words, rank/select
acceleration tables (cumulative popcounts), materialized population values,
the deduped NEEDLETAIL row-store value column.  The layout mirrors the shm
packing: a raw little-endian C-contiguous buffer, preceded by a small
self-describing header so a file is verifiable without its catalog row::

    offset 0   magic  b"RPSG"
    offset 4   u16    format version (little-endian)
    offset 6   u16    reserved (zero)
    offset 8   u32    metadata length in bytes (little-endian)
    offset 12  meta   UTF-8 JSON: {"dtype", "shape", "nbytes", "crc32"}
    ...        pad    zero bytes up to the payload alignment (64)
    aligned    data   the array bytes, C-order

Writes are crash-safe: bytes go to a ``.tmp`` sibling, are fsynced, and
reach the final name through one atomic ``os.replace`` - a reader can never
observe a half-written segment, and a process killed mid-write leaves only
a temp orphan for ``Store.gc()``.  Reads return a *read-only*
``np.memmap`` view (``mmap=True``, the default): opening a segment touches
the header page only, and untouched index pages are never paged in - the
lifecycle difference from shm segments, which are fully resident copies.

Every structural problem - bad magic, unsupported version, truncated
payload, dtype/shape drift from the catalog row - raises
:class:`~repro.errors.StorageError`; full-payload checksum verification
(``verify_segment``) backs ``repro store verify``.
"""

from __future__ import annotations

import json
import os
import struct
import zlib

import numpy as np

from repro.errors import StorageError
from repro.resilience.faults import fault_at

__all__ = [
    "MAGIC",
    "FORMAT_VERSION",
    "SegmentInfo",
    "write_segment",
    "read_segment",
    "verify_segment",
]

MAGIC = b"RPSG"
FORMAT_VERSION = 1

#: Payload alignment: dtype-safe for every numpy itemsize and cache-line
#: friendly for the mapped word arrays.
_ALIGN = 64

_FIXED = struct.Struct("<4sHHI")  # magic, version, reserved, meta length


class SegmentInfo:
    """Parsed header of one segment file (plus its data offset)."""

    __slots__ = ("dtype", "shape", "nbytes", "crc32", "data_offset")

    def __init__(self, dtype: str, shape: tuple[int, ...], nbytes: int,
                 crc32: int, data_offset: int) -> None:
        self.dtype = dtype
        self.shape = shape
        self.nbytes = int(nbytes)
        self.crc32 = int(crc32)
        self.data_offset = int(data_offset)


def _header_bytes(array: np.ndarray, crc: int) -> bytes:
    meta = json.dumps(
        {
            "dtype": array.dtype.str,
            "shape": list(array.shape),
            "nbytes": int(array.nbytes),
            "crc32": int(crc),
        },
        sort_keys=True,
    ).encode("utf-8")
    head = _FIXED.pack(MAGIC, FORMAT_VERSION, 0, len(meta)) + meta
    pad = (-len(head)) % _ALIGN
    return head + b"\x00" * pad


def write_segment(path: str | os.PathLike, array: np.ndarray, *, index: int = 0) -> SegmentInfo:
    """Write ``array`` to ``path`` atomically; returns its parsed header.

    ``index`` is the store's monotonically increasing segment-write counter,
    the trigger coordinate of the ``storage.write_segment`` fault site (an
    injected ``fail_segment_write`` raises a ``TransientError`` here,
    before any byte exists on disk).  The write lands in ``path + ".tmp"``
    first and is renamed into place only after an fsync, so a crash at any
    point leaves either the old segment or no segment - never a torn one.
    """
    fault_at("storage.write_segment", shard=None, index=index)
    fault_at("storage.segment_write", shard=None, index=index)  # ENOSPC shape
    path = os.fspath(path)
    array = np.ascontiguousarray(array)
    if array.dtype.hasobject:
        raise StorageError(f"{path}: object-dtype arrays cannot be stored")
    data = array.tobytes()
    crc = zlib.crc32(data)
    header = _header_bytes(array, crc)
    tmp = f"{path}.tmp"
    with open(tmp, "wb") as fh:
        fh.write(header)
        fh.write(data)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    return SegmentInfo(array.dtype.str, tuple(array.shape), array.nbytes, crc,
                       len(header))


def _read_header(path: str) -> SegmentInfo:
    try:
        with open(path, "rb") as fh:
            fixed = fh.read(_FIXED.size)
            if len(fixed) < _FIXED.size:
                raise StorageError(f"{path}: truncated segment header")
            magic, version, _reserved, meta_len = _FIXED.unpack(fixed)
            if magic != MAGIC:
                raise StorageError(f"{path}: not a repro segment (bad magic {magic!r})")
            if version != FORMAT_VERSION:
                raise StorageError(
                    f"{path}: unsupported segment format version {version} "
                    f"(this build reads version {FORMAT_VERSION})"
                )
            meta_raw = fh.read(meta_len)
            if len(meta_raw) < meta_len:
                raise StorageError(f"{path}: truncated segment metadata")
    except OSError as exc:
        raise StorageError(f"{path}: cannot read segment ({exc})") from exc
    try:
        meta = json.loads(meta_raw.decode("utf-8"))
        dtype, shape = str(meta["dtype"]), tuple(int(n) for n in meta["shape"])
        nbytes, crc = int(meta["nbytes"]), int(meta["crc32"])
    except (ValueError, KeyError, TypeError) as exc:
        raise StorageError(f"{path}: corrupt segment metadata ({exc})") from exc
    head_len = _FIXED.size + meta_len
    data_offset = head_len + ((-head_len) % _ALIGN)
    info = SegmentInfo(dtype, shape, nbytes, crc, data_offset)
    expected = int(np.prod(shape)) * np.dtype(dtype).itemsize if shape else np.dtype(dtype).itemsize
    if expected != nbytes:
        raise StorageError(
            f"{path}: metadata disagrees with itself "
            f"(dtype {dtype} x shape {shape} != {nbytes} bytes)"
        )
    if os.path.getsize(path) != data_offset + nbytes:
        raise StorageError(
            f"{path}: truncated segment payload "
            f"(file is {os.path.getsize(path)} bytes, "
            f"need {data_offset + nbytes})"
        )
    return info


def _flip_payload_byte(path: str, data_offset: int) -> None:
    """XOR the first payload byte on disk - the ``flip_segment_bit`` fault.

    The flip is persistent (real rot, not a transient read error): every
    later read of the same file sees the corruption until a self-healing
    load quarantines the build and re-persists it from source.
    """
    with open(path, "r+b") as fh:
        fh.seek(data_offset)
        byte = fh.read(1)
        if not byte:
            return
        fh.seek(data_offset)
        fh.write(bytes([byte[0] ^ 0x01]))


def read_segment(
    path: str | os.PathLike, *, mmap: bool = True, index: int = 0
) -> np.ndarray:
    """Map (or load) a segment's array; structural checks always run.

    With ``mmap=True`` (the default) the returned array is a *read-only*
    ``np.memmap`` view - zero-copy, paged in on demand.  ``mmap=False``
    reads the payload into a fresh in-memory array (still returned
    read-only, so both modes behave identically downstream).

    ``index`` is the store's monotonically increasing segment-read counter,
    the trigger coordinate of the ``storage.segment_read`` fault site: an
    injected ``flip_segment_bit`` corrupts one payload byte on disk here,
    before the map, so checksum verification deterministically fails.
    """
    path = os.fspath(path)
    fault = fault_at("storage.segment_read", shard=None, index=index)
    info = _read_header(path)
    if fault is not None and fault.kind == "flip_segment_bit":
        _flip_payload_byte(path, info.data_offset)
    if mmap:
        return np.memmap(path, dtype=np.dtype(info.dtype), mode="r",
                         offset=info.data_offset, shape=info.shape)
    with open(path, "rb") as fh:
        fh.seek(info.data_offset)
        array = np.frombuffer(fh.read(info.nbytes), dtype=np.dtype(info.dtype))
    array = array.reshape(info.shape)
    array.flags.writeable = False
    return array


def verify_segment(path: str | os.PathLike) -> SegmentInfo:
    """Full verification: structure plus the crc32 of every payload byte.

    Raises :class:`StorageError` naming the file on any mismatch - the
    guarantee behind ``repro store verify``: a flipped bit in a mapped
    index surfaces as a clear error, never as silently wrong query results.
    """
    path = os.fspath(path)
    info = _read_header(path)
    crc = 0
    with open(path, "rb") as fh:
        fh.seek(info.data_offset)
        while True:
            block = fh.read(1 << 20)
            if not block:
                break
            crc = zlib.crc32(block, crc)
    if crc != info.crc32:
        raise StorageError(
            f"{path}: checksum mismatch (stored {info.crc32:#010x}, "
            f"payload is {crc:#010x}) - the segment is corrupt; "
            "run `repro store gc` after rebuilding"
        )
    return info
