"""``DurableCatalog``: the in-memory catalog backed by an on-disk store.

A durable catalog behaves exactly like :class:`~repro.catalog.Catalog` - same
``attach``/``register``/``population``/``indexed_engine`` surface, same
source-identity cache keys - with one addition: every cacheable build is also
persisted to a :class:`~repro.storage.store.Store`, and answered from
memory-mapped segments on later lookups.  Because the mapped arrays are the
*same bytes* the RAM build produced (the pack/unpack round trip in
:mod:`repro.storage.mapped`), queries over a warm-opened catalog are
bit-identical to cold-built ones - asserted by the storage test matrix across
every sampler kind, both executors, and shard counts.

Re-open discipline: ``DurableCatalog(path)`` reloads every persisted binding
(CSV/Parquet paths, synthetic generator specs, memory tables stored as
column segments) in O(bindings), and the first query over each table maps its
index straight from disk - ``BUILD_COUNTS`` shows zero ``NeedletailEngine``
constructions on the warm path.

Staleness discipline (the PR-8 stale-cache fix): builds are fingerprinted by
their source's identity-on-disk (path + size + mtime for files, a content
checksum for memory tables, the parameter spec for synthetic sources).  A
lookup whose fingerprint drifted is a miss; :meth:`invalidate` and a
rebinding :meth:`register` additionally *delete* the on-disk builds, so a
rewritten CSV can never serve the old segment - not even to a process that
skipped the invalidate.

Self-healing discipline (PR 10): queries never fail on store rot, and never
fail on a store that stopped accepting writes.

* A corrupt build detected at load time (checksum/shape mismatch, missing
  file) is **quarantined** - catalog row tombstoned, files moved to
  ``quarantine/`` - and the lookup becomes a clean miss, so the normal cold
  path rebuilds from source and re-persists.  The event is noted and
  surfaced as a ``resilience:`` caveat on the next result.
* An OS-level write failure (ENOSPC is the canonical shape) trips a sticky
  :class:`~repro.resilience.breaker.CircuitBreaker`: from then on every
  persist is skipped and the catalog runs memory-only write-through -
  the query path is never blocked on a disk that cannot take bytes.
  Injected ``fail_segment_write`` transients are *not* absorbed: the crash
  -atomicity contract (a failed save leaves no partial build and surfaces)
  is unchanged.
"""

from __future__ import annotations

import json
import os
import sqlite3
import zlib

from repro.catalog.catalog import Catalog
from repro.catalog.csv import CSVSource
from repro.catalog.parquet import HAVE_PYARROW, ParquetSource
from repro.catalog.schema import ColumnSchema, Schema
from repro.catalog.source import DataSource, TableSource
from repro.catalog.synthetic import SyntheticSource
from repro.data.population import Population
from repro.errors import StorageError
from repro.query.ast import Predicate, predicate_to_dict
from repro.resilience.breaker import CircuitBreaker
from repro.storage.mapped import (
    pack_index,
    pack_population,
    pack_table,
    unpack_index,
    unpack_population,
    unpack_table,
)
from repro.storage.store import Store

__all__ = ["DurableCatalog"]


def _canonical(payload: dict) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _schema_json(schema: Schema) -> str:
    return _canonical({"columns": [[c.name, c.kind] for c in schema]})


class DurableCatalog(Catalog):
    """A :class:`Catalog` whose builds and bindings survive the process.

    Args:
        path: the store directory (created if absent); holds
            ``catalog.sqlite`` plus one segment file per persisted array.
    """

    def __init__(self, path: str | os.PathLike) -> None:
        super().__init__()
        self._store = Store(path)
        #: Mapped engines by ``(source, build_key)`` - the RAM face of the
        #: on-disk index builds, evicted together with the other caches.
        self._engines: dict[tuple, object] = {}
        #: Content fingerprints for memory tables (immutable once attached);
        #: file fingerprints are re-stat'ed on every lookup instead.
        self._fps: dict[DataSource, str] = {}
        #: Sticky store-write breaker: one OS-level write failure (ENOSPC
        #: et al.) degrades the catalog to memory-only write-through for the
        #: rest of its life - a full disk never blocks the query path.
        self._breaker = CircuitBreaker(threshold=1)
        #: Self-healing notes (quarantines, write degradation) awaiting
        #: :meth:`drain_resilience_events`; shared with snapshots.
        self._events: list[str] = []
        self._reload()

    @property
    def store(self) -> Store:
        """The backing :class:`Store` (CLI maintenance goes through this)."""
        return self._store

    def close(self) -> None:
        """Close the backing store's database connection."""
        self._store.close()

    def __enter__(self) -> "DurableCatalog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- self-healing --------------------------------------------------------

    @property
    def degraded(self) -> bool:
        """True once the write breaker opened (memory-only write-through)."""
        return self._breaker.open

    def _note(self, event: str) -> None:
        with self._lock:
            self._events.append(event)

    def drain_resilience_events(self) -> list[str]:
        """Quarantine/degradation notes since the last drain (then cleared).

        The planner drains these into ``resilience:`` result caveats, the
        same surface worker-recovery events use - so a query that healed the
        store on its way to an answer says so.
        """
        with self._lock:
            events, self._events[:] = list(self._events), []
        return events

    def _healing_load(
        self, name: str, kind: str, key: str, *, fingerprint: str | None
    ):
        """``Store.load_build`` that quarantines corruption instead of raising.

        A :class:`StorageError` here means rot (checksum/shape mismatch,
        missing or swapped file): the build is pulled from service and the
        lookup reported as a miss, so the caller's cold path rebuilds from
        source and re-persists - the query never fails.
        """
        try:
            return self._store.load_build(name, kind, key, fingerprint=fingerprint)
        except StorageError as exc:
            moved = self._store.quarantine_build(name, kind, key, reason=str(exc))
            self._note(
                f"storage: quarantined corrupt {kind} build for table "
                f"{name!r} ({len(moved)} segment(s)) and rebuilt from source"
            )
            return None

    def _best_effort_persist(self, what: str, op) -> bool:
        """Run one persist step unless (until) the write breaker is open.

        OS-level failures (ENOSPC, EIO, a read-only filesystem - and the
        sqlite errors they surface as) trip the sticky breaker and are
        swallowed: the build stays served from memory and the caller
        continues.  Everything else -- notably the injected
        ``fail_segment_write`` :class:`~repro.errors.TransientError` the
        crash-atomicity tests drive -- propagates unchanged.
        """
        if self._breaker.open:
            return False
        try:
            op()
            return True
        except (OSError, sqlite3.Error) as exc:
            self._breaker.record_failure(f"store write failed: {exc}")
            self._note(
                f"storage: {what} could not be persisted ({exc}); the store "
                "is write-degraded, running memory-only until restart"
            )
            return False

    # -- binding persistence -------------------------------------------------

    def _reload(self) -> None:
        """Rebuild every persisted binding (O(bindings), no data scanned)."""
        for row in self._store.bindings():
            try:
                source = self._rebuild_source(row)
            except StorageError:
                raise
            except Exception:
                # A binding whose reconstruction fails outright (e.g. a
                # synthetic family renamed between versions) is skipped; the
                # catalog row stays for `repro store ls` forensics.
                continue
            if source is not None:
                Catalog.register(self, row["name"], source)

    def _rebuild_source(self, row: dict) -> DataSource | None:
        options = json.loads(row["source_json"])
        kind = row["kind"]
        if kind == "csv":
            return CSVSource(**options)
        if kind == "parquet":
            if not HAVE_PYARROW:
                return None
            return ParquetSource(**options)
        if kind == "synthetic":
            family = options.pop("family")
            return SyntheticSource(family, **options)
        if kind == "memory":
            # A rotten table build quarantines like any other - but a memory
            # table's only source *was* the build, so the name simply stays
            # unbound (re-attach to restore it); queries elsewhere are
            # unaffected and the caveat says what happened.
            hit = self._healing_load(
                row["name"], "table", "table", fingerprint=row["fingerprint"]
            )
            if hit is None:
                return None
            meta, arrays = hit
            table = unpack_table(meta, arrays, row["name"])
            source = TableSource(table, name=row["name"])
            self._fps[source] = row["fingerprint"]
            return source
        return None

    def _describe_source(self, source: DataSource) -> tuple[str, dict] | None:
        """``(kind, source_json)`` for a persistable source, else ``None``.

        The inverse of :meth:`_rebuild_source`.  Sources with no durable
        description (iterator streams, custom callables, third-party
        ``DataSource`` subclasses) stay memory-only.
        """
        if isinstance(source, CSVSource):
            return "csv", {
                "path": source.path,
                "group_columns": sorted(source._group_cols),
                "value_columns": sorted(source._value_cols),
                "delimiter": source._delimiter,
                "chunk_rows": source._chunk_rows,
            }
        if isinstance(source, ParquetSource):
            return "parquet", {"path": source.path, "batch_rows": source._batch_rows}
        if isinstance(source, SyntheticSource):
            from repro.data.synthetic import SYNTHETIC_FAMILIES

            if source._family not in SYNTHETIC_FAMILIES:
                return None  # a bare callable cannot be rebuilt from JSON
            try:
                json.dumps(source._params)
            except (TypeError, ValueError):
                return None
            return "synthetic", {
                "family": source._family,
                "group_column": source._group_column,
                "value_column": source._value_column,
                **source._params,
            }
        if isinstance(source, TableSource):
            return "memory", {}
        return None

    def _fingerprint(self, source: DataSource) -> str | None:
        """The source's identity-on-disk; ``None`` when it has none.

        A changed fingerprint is how every stale-cache defense fires: disk
        lookups compare it per call (files are re-stat'ed each time), and a
        rebinding ``register`` deletes builds whose fingerprint moved.
        """
        if isinstance(source, (CSVSource, ParquetSource)):
            try:
                st = os.stat(source.path)
            except OSError:
                return None
            return _canonical([source.path, st.st_size, st.st_mtime_ns])
        if isinstance(source, SyntheticSource):
            try:
                return _canonical([source._family, source._params])
            except (TypeError, ValueError):
                return None
        if isinstance(source, TableSource):
            cached = self._fps.get(source)
            if cached is not None:
                return cached
            crc = 0
            table = source.table
            for name in table.column_names:
                column = table.column(name)
                crc = zlib.crc32(name.encode("utf-8"), crc)
                if not column.dtype.hasobject:
                    crc = zlib.crc32(column.tobytes(), crc)
            fp = f"crc32:{crc:08x}:{table.num_rows}"
            self._fps[source] = fp
            return fp
        return None

    def register(self, name: str, source) -> "DurableCatalog":
        super().register(name, source)
        bound = self._sources[name]
        self._best_effort_persist(
            f"binding for table {name!r}",
            lambda: self._persist_binding(name, bound),
        )
        return self

    def _persist_binding(self, name: str, source: DataSource) -> None:
        desc = self._describe_source(source)
        if desc is None or not source.cacheable:
            # Not durable: make sure no stale binding lingers under the name.
            if self._store.binding(name) is not None:
                self._store.unbind_table(name)
            return
        kind, source_json = desc
        fingerprint = self._fingerprint(source)
        old = self._store.binding(name)
        if old is not None and (
            old["kind"] != kind
            or old["source_json"] != _canonical(source_json)
            or old["fingerprint"] != fingerprint
        ):
            # Rebinding to different data: the on-disk builds are stale NOW,
            # not at next lookup - delete them (the PR-8 regression contract).
            self._store.drop_builds(name)
        self._store.bind_table(
            name,
            kind=kind,
            schema_json=_schema_json(source.schema()),
            row_count=source.row_count_hint(),
            source_json=_canonical(source_json),
            fingerprint=fingerprint,
        )
        if kind == "memory":
            self._persist_table(name, source, fingerprint)

    def _persist_table(self, name: str, source: TableSource, fingerprint) -> None:
        """Persist a memory table's columns so re-open can rebuild the source."""
        if self._healing_load(name, "table", "table", fingerprint=fingerprint):
            return  # identical content already stored
        packed = pack_table(source.table)
        if packed is None:
            # Object-dtype columns have no stable byte form: drop the binding
            # (the source still works, it is just not durable).
            self._store.unbind_table(name)
            return
        meta, arrays = packed
        self._store.save_build(
            name, "table", "table", fingerprint=fingerprint, meta=meta, arrays=arrays
        )

    def invalidate(self, name: str) -> "DurableCatalog":
        """Drop the name's cached builds - in memory AND on disk."""
        super().invalidate(name)
        source = self._sources.get(name)

        def refresh():
            self._store.drop_builds(name)
            if source is not None:
                self._persist_binding(name, source)  # refresh the fingerprint

        if source is not None:
            self._fps.pop(source, None)
        # Best-effort on a degraded store: the in-memory drop above already
        # guarantees no stale build is served from *this* process, and the
        # fingerprint check protects any other.
        self._best_effort_persist(f"invalidation of table {name!r}", refresh)
        return self

    def _drop_builds(self, source: DataSource) -> None:
        super()._drop_builds(source)
        for key in [k for k in self._engines if k[0] is source]:
            del self._engines[key]

    # -- disk-backed builds --------------------------------------------------

    def _build_key(
        self,
        group_spec,
        group_col: str,
        value_column: str,
        predicate: Predicate | None,
        value_bound: float | None,
    ) -> str:
        return _canonical(
            {
                "group_by": list(group_spec) if group_spec else [group_col],
                "value": value_column,
                "where": predicate_to_dict(predicate) if predicate is not None else None,
                "bound": value_bound,
            }
        )

    def indexed_engine(
        self,
        name: str,
        group_col: str,
        value_column: str,
        *,
        value_bound: float | None = None,
        predicate: Predicate | None = None,
        group_spec=None,
        builder=None,
    ):
        """A NEEDLETAIL engine for one build coordinate, disk-cached.

        Hit: the engine is reconstructed zero-copy over memory-mapped
        segments (:class:`~repro.storage.mapped.MappedNeedletailEngine`) -
        no table materialization, no ``BitmapIndex`` build - and kept in an
        in-RAM map so repeated queries skip even the header reads.  Miss:
        ``builder`` runs (the planner's cold construction) and, when the
        result packs (flat bitmap words, one shared value column), the build
        is persisted for every later process.
        """
        if builder is None:
            return None
        source = self.source(name)
        if not source.cacheable or self._store.binding(name) is None:
            return builder()
        key = self._build_key(group_spec, group_col, value_column, predicate, value_bound)
        with self._lock:
            engine = self._engines.get((source, key))
        if engine is not None:
            return engine
        fingerprint = self._fingerprint(source)
        hit = self._healing_load(name, "needletail", key, fingerprint=fingerprint)
        if hit is not None:
            meta, arrays = hit
            engine = unpack_index(
                meta, arrays, group_by=group_col, value_column=value_column
            )
            with self._lock:
                engine = self._engines.setdefault((source, key), engine)
            return engine
        engine = builder()
        packed = pack_index(engine)
        if packed is not None:
            meta, arrays = packed
            self._best_effort_persist(
                f"needletail build for table {name!r}",
                lambda: self._store.save_build(
                    name, "needletail", key, fingerprint=fingerprint,
                    meta=meta, arrays=arrays,
                ),
            )
        return engine

    def population(
        self,
        name: str,
        group_col: str,
        value_col: str,
        *,
        predicate: Predicate | None = None,
        value_bound: float | None = None,
    ) -> Population:
        source = self.source(name)
        if not source.cacheable or self._store.binding(name) is None:
            return super().population(
                name, group_col, value_col, predicate=predicate, value_bound=value_bound
            )
        ram_key = (source, group_col, value_col, predicate, value_bound)
        with self._lock:
            cached = self._populations.get(ram_key)
        if cached is not None:
            # Delegate so the base LRU bookkeeping (move_to_end) still runs.
            return super().population(
                name, group_col, value_col, predicate=predicate, value_bound=value_bound
            )
        key = self._build_key(None, group_col, value_col, predicate, value_bound)
        fingerprint = self._fingerprint(source)
        hit = self._healing_load(name, "population", key, fingerprint=fingerprint)
        if hit is not None:
            meta, arrays = hit
            population = unpack_population(meta, arrays)
            with self._lock:
                population = self._populations.setdefault(ram_key, population)
                self._populations.move_to_end(ram_key)
                while len(self._populations) > self.MAX_CACHED_POPULATIONS:
                    self._populations.popitem(last=False)
            return population
        population = super().population(
            name, group_col, value_col, predicate=predicate, value_bound=value_bound
        )
        packed = pack_population(population)
        if packed is not None:
            meta, arrays = packed
            self._best_effort_persist(
                f"population build for table {name!r}",
                lambda: self._store.save_build(
                    name, "population", key, fingerprint=fingerprint,
                    meta=meta, arrays=arrays,
                ),
            )
        return population

    # -- priming (repro store build) ----------------------------------------

    def prime(
        self,
        name: str,
        group_col: str,
        value_col: str,
        *,
        value_bound: float | None = None,
    ) -> list[str]:
        """Build and persist the builds one ``(group, value)`` query needs.

        Returns the kinds persisted (``["needletail", "population"]`` in the
        common case).  This is ``repro store build``'s workhorse: it runs
        the same cold constructions the first query would, so a server
        restarted against the store boots warm.
        """
        from repro.needletail.engine import NeedletailEngine

        primed: list[str] = []

        def build():
            return NeedletailEngine(
                self.table(name), group_col, value_col, c=value_bound
            )

        before = len(self._store.builds(name))
        try:
            self.indexed_engine(
                name,
                group_col,
                value_col,
                value_bound=value_bound,
                group_spec=[group_col],
                builder=build,
            )
        except ValueError:
            pass  # virtual synthetic sources have no row store to index
        if len(self._store.builds(name)) > before:
            primed.append("needletail")
        before = len(self._store.builds(name))
        self.population(name, group_col, value_col, value_bound=value_bound)
        if len(self._store.builds(name)) > before:
            primed.append("population")
        return primed

    # -- checkpoints ---------------------------------------------------------

    def save_checkpoint(
        self, checkpoint_id: str, *, kind: str, payload: dict, state: dict
    ) -> bool:
        """Best-effort checkpoint write (skipped once the store degraded)."""
        return self._best_effort_persist(
            f"checkpoint {checkpoint_id!r}",
            lambda: self._store.save_checkpoint(
                checkpoint_id, kind=kind, payload=payload, state=state
            ),
        )

    def load_checkpoint(self, checkpoint_id: str) -> tuple[dict, dict] | None:
        return self._store.load_checkpoint(checkpoint_id)

    def checkpoints(self, kind: str | None = None) -> list[dict]:
        return self._store.checkpoints(kind)

    def delete_checkpoint(self, checkpoint_id: str) -> bool:
        ok = False

        def drop():
            nonlocal ok
            ok = self._store.delete_checkpoint(checkpoint_id)

        self._best_effort_persist(f"checkpoint {checkpoint_id!r} deletion", drop)
        return ok

    def snapshot(self) -> "DurableCatalog":
        """A name-isolated view sharing the store and every build cache.

        Same contract as :meth:`Catalog.snapshot` - later registrations on
        either view never change what the other's names resolve to - but the
        clone keeps answering from (and persisting to) the same store, so
        ``Session.submit``/``repro serve`` queries stay durable-backed.
        """
        clone = object.__new__(DurableCatalog)
        with self._lock:
            clone._sources = dict(self._sources)
            clone._tables = self._tables
            clone._populations = self._populations
            clone._lock = self._lock
            clone._invalidation_listeners = self._invalidation_listeners
            clone._store = self._store
            clone._engines = self._engines
            clone._fps = self._fps
            clone._breaker = self._breaker
            clone._events = self._events
        return clone
