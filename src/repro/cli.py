"""Command-line interface: demos, experiments, catalog inspection, queries.

Usage::

    python -m repro demo
    python -m repro list
    python -m repro experiment fig3a [--scale smoke|paper]
    python -m repro bench-export [--output BENCH_micro.json]
    python -m repro tables [--csv PATH]... [--parquet PATH]... [--flights]
    python -m repro describe TABLE [--csv PATH]... [--parquet PATH]...
    python -m repro query "SELECT carrier, AVG(arrival_delay) FROM flights GROUP BY carrier" \
        [--rows 100000] [--algorithm ifocus] [--delta 0.05] [--resolution 0] [--seed 0] \
        [--csv data.csv] [--group-columns carrier] [--value-columns arrival_delay] \
        [--engine needletail|memory|noindex] [--shards 4] [--workers 4] \
        [--executor thread|process] [--deadline-ms 500] [--max-retries 2] [--stream] \
        [--window SIZE [--window-every STRIDE] [--window-on COL] [--late drop] \
         [--allowed-lateness 0] [--max-windows N]]
    python -m repro stream "SELECT ... GROUP BY ..." --window SIZE \
        [--window-every STRIDE] [--window-on COL] [--updates] [--max-windows N] \
        [--store DIR [--resume]]
    python -m repro serve [--host 127.0.0.1] [--port 8765] [--sessions 2] \
        [--csv PATH]... [--flights] [--tenant NAME=MAX[:QUEUE[:DEADLINE_MS]]]... \
        [--drain-timeout 30]
    python -m repro store build STORE [--csv PATH]... [--flights] \
        [--table NAME] [--group-by COL] [--value COL]
    python -m repro store ls|gc STORE
    python -m repro store verify STORE [--repair]

``query`` goes through the Session API.  By default it runs against a freshly
synthesized flights table (the offline stand-in for the paper's dataset); with
``--csv PATH`` the table named in the SQL is bound to your own data instead.
``--group-columns``/``--value-columns`` (comma-separated) pin CSV columns to
string/numeric typing when auto-detection is not enough.

``tables`` and ``describe`` inspect the session catalog without running a
query: source kinds, schemas, row counts, and cached-build status.  Each
``--csv``/``--parquet`` flag attaches one file under its stem name (or
``NAME=PATH`` to pick the name); with no flags the synthetic flights table
is attached so there is always something to show.

``--store DIR`` (on ``tables``/``describe``/``query``/``serve``) opens a
durable store: attached sources and their cached index builds persist, and
later invocations - including a restarted ``serve`` - re-open them warm from
memory-mapped segments.  ``store build`` primes those builds offline,
``store ls`` summarizes what a store holds, ``store verify`` checksums every
segment (exit 1 on corruption), and ``store gc`` sweeps orphaned files.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable

from repro.experiments import (
    ablation_batching,
    ablation_cost_model,
    ablation_kappa,
    ablation_removal_policy,
    PAPER,
    SMOKE,
    fig3a_percentage_vs_size,
    fig3b_samples_vs_time,
    fig3c_percentage_vs_delta,
    fig4_runtime_vs_size,
    fig5a_heuristic_accuracy,
    fig5b_heuristic_accuracy_hard,
    fig5c_active_groups_convergence,
    fig6a_incorrect_pairs,
    fig6b_percentage_vs_groups,
    fig6c_difficulty_vs_groups,
    fig7a_percentage_vs_skew,
    fig7b_percentage_vs_std,
    fig7c_difficulty_vs_std,
    table1_execution_trace,
    table3_flights_runtimes,
)
from repro.experiments.headline import headline_claims

EXPERIMENTS: dict[str, Callable] = {
    "table1": table1_execution_trace,
    "fig3a": fig3a_percentage_vs_size,
    "fig3b": fig3b_samples_vs_time,
    "fig3c": fig3c_percentage_vs_delta,
    "fig4": fig4_runtime_vs_size,
    "fig5a": fig5a_heuristic_accuracy,
    "fig5b": fig5b_heuristic_accuracy_hard,
    "fig5c": fig5c_active_groups_convergence,
    "fig6a": fig6a_incorrect_pairs,
    "fig6b": fig6b_percentage_vs_groups,
    "fig6c": fig6c_difficulty_vs_groups,
    "fig7a": fig7a_percentage_vs_skew,
    "fig7b": fig7b_percentage_vs_std,
    "fig7c": fig7c_difficulty_vs_std,
    "table3": table3_flights_runtimes,
    "headline": headline_claims,
    "ablation-batching": ablation_batching,
    "ablation-costmodel": ablation_cost_model,
    "ablation-kappa": ablation_kappa,
    "ablation-removal": ablation_removal_policy,
}


def _cmd_demo(_args: argparse.Namespace) -> int:
    import numpy as np

    from repro import avg, connect
    from repro.viz import render_barchart

    airlines = {"AA": 30, "JB": 15, "UA": 85, "DL": 45, "US": 60, "AL": 20, "SW": 23}
    rng = np.random.default_rng(7)
    session = connect(delta=0.05, engine="memory")
    session.register(
        "delays",
        {
            "airline": np.repeat(list(airlines), 200_000),
            "delay": np.concatenate(
                [np.clip(rng.normal(m, 15.0, 200_000), 0, 100) for m in airlines.values()]
            ),
        },
    )
    result = (
        session.table("delays").group_by("airline").agg(avg("delay")).bound(100.0).run(seed=42)
    )
    print(
        render_barchart(
            result.first.raw, title="Average delay by airline (IFOCUS, delta=0.05)"
        )
    )
    total = result.engine.population.total_size
    print(
        f"\nsampled {result.total_samples:,} of {total:,} rows "
        f"({100 * result.total_samples / total:.2f}%); "
        "bar order is correct with probability >= 0.95"
    )
    return 0


def _cmd_list(_args: argparse.Namespace) -> int:
    print("available experiments:")
    for name in EXPERIMENTS:
        print(f"  {name}")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    if args.name not in EXPERIMENTS:
        print(f"unknown experiment {args.name!r}; try: python -m repro list", file=sys.stderr)
        return 2
    scale = PAPER if args.scale == "paper" else SMOKE
    fig = EXPERIMENTS[args.name](scale)
    print(fig.format())
    return 0


def _cmd_bench_export(args: argparse.Namespace) -> int:
    from repro.bench import export_micro

    path = export_micro(args.output, smoke=args.smoke)
    print(f"wrote {path}")
    return 0


def _query_session(args: argparse.Namespace, table: str):
    """The session `query`/`stream` run against: CLI knobs + bound table."""
    from repro.catalog import SourceSpec
    from repro.session import connect

    session = connect(
        delta=args.delta,
        resolution=args.resolution,
        algorithm=args.algorithm,
        engine=args.engine,
        seed=args.seed,
        shards=args.shards,
        max_workers=args.workers,
        executor=args.executor,
        deadline_ms=args.deadline_ms,
        max_retries=args.max_retries,
        store=args.store,
    )
    if args.csv:
        session.attach(
            table,
            SourceSpec(
                "csv",
                path=args.csv,
                group_columns=_split_columns(args.group_columns),
                value_columns=_split_columns(args.value_columns),
            ),
        )
    elif table not in session.tables:
        # A warm store may already hold the table; otherwise synthesize it.
        session.attach(table, SourceSpec("flights", rows=args.rows, seed=args.seed))
    return session


def _windowed_builder(builder, args: argparse.Namespace):
    return builder.window(
        args.window,
        every=args.window_every,
        on=args.window_on,
        late=args.late,
        allowed_lateness=args.allowed_lateness,
    )


def _print_windows(cq, *, updates: bool) -> int:
    """Consume a ContinuousQuery, printing each window as it closes."""
    from repro.streaming import WindowResult

    windows = 0
    try:
        for event in cq:
            if not isinstance(event, WindowResult):
                if updates:
                    g = event.update.group
                    print(
                        f"  window[{event.window.index}] {event.update.aggregate} "
                        f"{g.label} = {g.estimate:.3f} (+/- {g.half_width:.3f})"
                    )
                continue
            windows += 1
            b = event.window
            tag = f"window[{b.index}] [{b.start:g}, {b.end:g})"
            if event.empty:
                print(f"{tag}: empty (closed by {event.closed_by})")
                continue
            notes = [f"{event.rows:,} rows", f"seed {event.seed}",
                     f"closed by {event.closed_by}"]
            if event.revision:
                notes.append(f"revision {event.revision} (+{event.late_rows} late)")
            if event.warm_start:
                notes.append("warm start")
            print(f"{tag}: {', '.join(notes)}")
            for agg_key, agg in event.result.aggregates.items():
                pairs = sorted(agg.estimates().items(), key=lambda p: -p[1])
                for label, value in pairs:
                    est = agg[label]
                    suffix = "" if est.exact else f"  (+/- {est.half_width:.3f})"
                    print(f"  {agg_key}  {label:>12}  {value:12.3f}{suffix}")
    except KeyboardInterrupt:
        cq.cancel()
        print("\ncancelled")
    print(f"{windows} windows emitted")
    return 0


def _cmd_stream(args: argparse.Namespace) -> int:
    from repro.query import parse_query

    query = parse_query(args.sql)
    session = _query_session(args, query.table)
    builder = _windowed_builder(session.sql(query), args)
    checkpoint = None
    if args.store:
        # The checkpoint is named by the query itself (canonical spec +
        # seed), so an interrupted `repro stream --store DIR` continues
        # with `--resume` - no id bookkeeping for the operator.
        import hashlib

        key = f"{builder.spec().canonical_key()}|{args.seed}"
        checkpoint = "stream-" + hashlib.sha256(key.encode()).hexdigest()[:16]
    elif args.resume:
        print("--resume needs --store (the checkpoint lives in the store)",
              file=sys.stderr)
        return 2
    try:
        cq = builder.subscribe(
            seed=args.seed,
            max_windows=args.max_windows,
            emit_updates=args.updates,
            checkpoint=checkpoint,
            resume=args.resume,
        )
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    code = _print_windows(cq, updates=args.updates)
    if checkpoint is not None:
        cq.join(5)
        if cq.cancelled:
            print(f"checkpoint retained; rerun with --resume to continue "
                  f"from window cursor {cq.stats().get('emissions', 0)}")
        else:
            session.catalog.delete_checkpoint(checkpoint)
    return code


def _cmd_query(args: argparse.Namespace) -> int:
    from repro.query import parse_query

    query = parse_query(args.sql)
    session = _query_session(args, query.table)

    if args.window is not None:
        # --window makes the query continuous: same printing as `stream`.
        if args.stream:
            print(
                "--stream prints one-shot partials; a windowed query is "
                "already continuous (drop --stream, or use `repro stream`)",
                file=sys.stderr,
            )
            return 2
        builder = _windowed_builder(session.sql(query), args)
        cq = builder.subscribe(
            seed=args.seed, max_windows=args.max_windows, emit_updates=False
        )
        return _print_windows(cq, updates=False)

    run_kwargs = {}
    if args.engine == "noindex" and args.max_samples:
        run_kwargs["max_samples"] = args.max_samples

    builder = session.sql(query)
    if args.stream:
        print("streaming partial results (groups appear as they finalize):")
        stream = builder.stream(seed=args.seed, **run_kwargs)
        for update in stream:
            g = update.group
            print(
                f"  [{update.emitted_so_far}/{update.total_groups}] {update.aggregate} "
                f"{g.label} = {g.estimate:.3f} (+/- {g.half_width:.3f}, "
                f"{g.samples:,} samples)"
            )
        out = stream.result
    else:
        out = builder.run(seed=args.seed, **run_kwargs)

    for agg_key, agg in out.aggregates.items():
        print(
            f"{agg_key} (algorithm={agg.algorithm}, samples={agg.total_samples:,}):"
        )
        pairs = sorted(agg.estimates().items(), key=lambda p: -p[1])
        for label, value in pairs:
            est = agg[label]
            suffix = "" if est.exact else f"  (+/- {est.half_width:.3f})"
            print(f"  {label:>12}  {value:12.3f}{suffix}")
    if out.dropped_by_having:
        print(f"HAVING dropped: {out.dropped_by_having}")
    print(f"guarantee: {out.guarantee.describe()}")
    for caveat in out.caveats:
        print(f"caveat: {caveat}")
    if out.deadline_exceeded:
        # Distinct exit code so scripts can tell "partial anytime answer"
        # (above output is still valid, intervals are just wider) from both
        # success (0) and bad invocations (2).
        return 3
    return 0


def _split_columns(arg: str | None) -> list[str]:
    if not arg:
        return []
    return [part.strip() for part in arg.split(",") if part.strip()]


# -- catalog inspection ------------------------------------------------------


def _name_and_path(arg: str) -> tuple[str, str]:
    """Parse a ``NAME=PATH`` or bare ``PATH`` registration flag."""
    import os

    if "=" in arg:
        name, path = arg.split("=", 1)
        return name.strip(), path
    return os.path.splitext(os.path.basename(arg))[0], arg


def _catalog_session(args: argparse.Namespace):
    """Build a session holding the sources named on the command line.

    With ``--store DIR`` (or the store subcommands' positional STORE) the
    session opens durably: previously attached sources come back from the
    store first, so a bare ``repro serve --store DIR`` boots warm with no
    flags at all.
    """
    from repro.catalog import SourceSpec
    from repro.session import connect

    session = connect(store=getattr(args, "store", None))
    for arg in args.csv or []:
        name, path = _name_and_path(arg)
        session.attach(
            name,
            SourceSpec(
                "csv",
                path=path,
                group_columns=_split_columns(getattr(args, "group_columns", None)),
                value_columns=_split_columns(getattr(args, "value_columns", None)),
            ),
        )
    for arg in args.parquet or []:
        name, path = _name_and_path(arg)
        session.attach(name, SourceSpec("parquet", path=path))
    if args.flights or not session.tables:
        session.attach("flights", SourceSpec("flights", rows=args.rows, seed=0))
    return session


def _format_rows(hint: int | None) -> str:
    return f"{hint:,}" if hint is not None else "?"


def _cmd_tables(args: argparse.Namespace) -> int:
    session = _catalog_session(args)
    infos = [session.describe_table(name) for name in session.tables]
    name_w = max(len("table"), *(len(i.name) for i in infos))
    kind_w = max(len("kind"), *(len(i.kind) for i in infos))
    print(f"{'table':<{name_w}}  {'kind':<{kind_w}}  {'rows':>12}  columns")
    for info in infos:
        cols = ", ".join(
            f"{c.name}:{'num' if c.is_numeric else 'str'}" for c in info.schema
        )
        print(
            f"{info.name:<{name_w}}  {info.kind:<{kind_w}}  "
            f"{_format_rows(info.row_count_hint):>12}  {cols}"
        )
    return 0


def _cmd_describe(args: argparse.Namespace) -> int:
    session = _catalog_session(args)
    if args.table not in session.tables:
        print(
            f"unknown table {args.table!r}; registered: {session.tables}",
            file=sys.stderr,
        )
        return 2
    info = session.describe_table(args.table)
    print(f"table: {info.name}")
    print(f"source: {info.description} (kind: {info.kind})")
    print(f"rows: {_format_rows(info.row_count_hint)}")
    print("columns:")
    for col in info.schema:
        print(f"  {col.name:<24} {col.kind}")
    print(f"materialized table cached: {'yes' if info.table_cached else 'no'}")
    if info.cached_populations:
        print("cached populations:")
        for group_col, value_col, predicate, bound in info.cached_populations:
            extras = []
            if predicate is not None:
                extras.append(f"where {predicate!r}")
            if bound is not None:
                extras.append(f"c={bound:g}")
            suffix = f"  ({', '.join(extras)})" if extras else ""
            print(f"  group by {group_col}, value {value_col}{suffix}")
    else:
        print("cached populations: none (first query triggers the build)")
    return 0


# -- store maintenance -------------------------------------------------------


def _cmd_store_build(args: argparse.Namespace) -> int:
    session = _catalog_session(args)
    catalog = session._catalog  # DurableCatalog: _catalog_session saw args.store
    names = [args.table] if args.table else list(session.tables)
    for name in names:
        if name not in session.tables:
            print(f"unknown table {name!r}; attached: {session.tables}", file=sys.stderr)
            return 2
        schema = session._catalog.schema(name)
        group_col = args.group_by or next(
            (c.name for c in schema if not c.is_numeric), None
        )
        value_col = args.value or next((c.name for c in schema if c.is_numeric), None)
        if group_col is None or value_col is None:
            print(
                f"{name}: cannot pick build columns (need one string and one "
                "numeric column; use --group-by/--value)",
                file=sys.stderr,
            )
            return 2
        primed = catalog.prime(name, group_col, value_col, value_bound=args.bound)
        what = ", ".join(primed) if primed else "nothing (already warm)"
        print(f"{name}: group by {group_col}, value {value_col} -> built {what}")
    return 0


def _cmd_store_ls(args: argparse.Namespace) -> int:
    from repro.storage import Store

    with Store(args.store) as store:
        rows = store.ls()
    if not rows:
        print("store is empty (attach sources with --store, or `repro store build`)")
        return 0
    name_w = max(len("table"), *(len(r["name"]) for r in rows))
    kind_w = max(len("kind"), *(len(r["kind"]) for r in rows))
    print(f"{'table':<{name_w}}  {'kind':<{kind_w}}  {'rows':>12}  "
          f"{'builds':>6}  {'segments':>8}  {'bytes':>12}")
    for r in rows:
        print(
            f"{r['name']:<{name_w}}  {r['kind']:<{kind_w}}  "
            f"{_format_rows(r['row_count']):>12}  {r['builds']:>6}  "
            f"{r['segments']:>8}  {r['bytes']:>12,}"
        )
    return 0


def _cmd_store_verify(args: argparse.Namespace) -> int:
    from repro.errors import StorageError
    from repro.storage import Store

    with Store(args.store) as store:
        if args.repair:
            report = store.repair()
            for name in report["quarantined_files"]:
                print(f"quarantined {name}")
            for name in report["removed_orphans"]:
                print(f"removed orphan {name}")
            print(
                f"repair: checked {report['checked']} segments, quarantined "
                f"{report['quarantined_builds']} corrupt build(s) "
                f"({len(report['quarantined_files'])} file(s)), removed "
                f"{len(report['removed_orphans'])} orphan(s); the next query "
                "rebuilds quarantined builds from source"
            )
            try:
                store.verify()
            except StorageError as exc:  # pragma: no cover - repair failed
                print(f"store is still corrupt after repair: {exc}", file=sys.stderr)
                return 1
            return 0
        try:
            checked = store.verify()
        except StorageError as exc:
            print(str(exc), file=sys.stderr)
            print("hint: `repro store verify --repair` quarantines corrupt "
                  "builds and sweeps orphans", file=sys.stderr)
            return 1
    print(f"verified {checked} segments: all checksums match their catalog rows")
    return 0


def _cmd_store_gc(args: argparse.Namespace) -> int:
    from repro.storage import Store

    with Store(args.store) as store:
        removed = store.gc()
    for entry in removed:
        print(f"removed {entry}")
    print(f"gc: removed {len(removed)} orphaned files")
    return 0


# -- serve -------------------------------------------------------------------


def _parse_tenant_flag(arg: str):
    """Parse ``NAME=MAX[:QUEUE[:DEADLINE_MS]]`` into (name, TenantConfig)."""
    from repro.serve import TenantConfig

    name, _, rest = arg.partition("=")
    name = name.strip()
    if not name or not rest:
        raise ValueError(f"--tenant needs NAME=MAX[:QUEUE[:DEADLINE_MS]], got {arg!r}")
    parts = rest.split(":")
    if len(parts) > 3:
        raise ValueError(f"--tenant takes at most MAX:QUEUE:DEADLINE_MS, got {arg!r}")
    config = TenantConfig(
        max_concurrent=int(parts[0]),
        queue_limit=int(parts[1]) if len(parts) > 1 else 16,
        deadline_ms=float(parts[2]) if len(parts) > 2 else None,
    )
    return name, config


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve import QueryService, TenantConfig, TenantRegistry, run_server

    session = _catalog_session(args)
    tenants = TenantRegistry(
        TenantConfig(
            max_concurrent=args.max_concurrent,
            queue_limit=args.queue_limit,
            deadline_ms=args.deadline_ms,
        )
    )
    for arg in args.tenant or []:
        try:
            name, config = _parse_tenant_flag(arg)
        except ValueError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        tenants.configure(name, config)
    service = QueryService(
        session,
        sessions=args.sessions,
        tenants=tenants,
        cache_entries=args.cache_entries,
        default_seed=args.seed,
    )
    run_server(
        service,
        host=args.host,
        port=args.port,
        drain_timeout=args.drain_timeout,
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Rapid sampling for visualizations with ordering guarantees (VLDB 2015)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="render the Figure-1 bar chart approximately")
    demo.set_defaults(fn=_cmd_demo)

    lst = sub.add_parser("list", help="list reproducible experiments")
    lst.set_defaults(fn=_cmd_list)

    exp = sub.add_parser("experiment", help="run one figure/table reproduction")
    exp.add_argument("name", help="experiment id, e.g. fig3a, table3, headline")
    exp.add_argument("--scale", choices=("smoke", "paper"), default="smoke")
    exp.set_defaults(fn=_cmd_experiment)

    bench = sub.add_parser(
        "bench-export",
        help="run the micro benchmark suite and write the normalized BENCH_micro.json",
    )
    bench.add_argument("--output", default=None,
                       help="output path (default BENCH_micro.json, or "
                       "BENCH_micro.smoke.json with --smoke)")
    bench.add_argument("--smoke", action="store_true",
                       help="light sanity run: fast micro ops only, seconds not minutes")
    bench.set_defaults(fn=_cmd_bench_export)

    def add_catalog_flags(p: argparse.ArgumentParser, *, store_flag: bool = True) -> None:
        if store_flag:
            p.add_argument("--store", default=None, metavar="DIR",
                           help="open (or create) a durable store: attached "
                           "sources and cached builds persist and re-open warm")
        p.add_argument("--csv", action="append", metavar="[NAME=]PATH",
                       help="attach a CSV file (repeatable); name defaults "
                       "to the file stem")
        p.add_argument("--parquet", action="append", metavar="[NAME=]PATH",
                       help="attach a Parquet file (needs the pyarrow extra)")
        p.add_argument("--flights", action="store_true",
                       help="also attach the synthetic flights table")
        p.add_argument("--rows", type=int, default=100_000,
                       help="rows of the synthetic flights table")
        p.add_argument("--group-columns", default=None, metavar="A,B",
                       help="CSV columns to keep as strings (group-by keys)")
        p.add_argument("--value-columns", default=None, metavar="X,Y",
                       help="CSV columns that must parse as numbers")

    tbls = sub.add_parser(
        "tables",
        help="list the catalog: table names, source kinds, row counts, schemas",
    )
    add_catalog_flags(tbls)
    tbls.set_defaults(fn=_cmd_tables)

    desc = sub.add_parser(
        "describe",
        help="show one table's schema, source kind, and cached-build status",
    )
    desc.add_argument("table", help="catalog name of the table to describe")
    add_catalog_flags(desc)
    desc.set_defaults(fn=_cmd_describe)

    def add_query_flags(p: argparse.ArgumentParser, *, window_required: bool) -> None:
        p.add_argument("sql")
        p.add_argument("--rows", type=int, default=100_000,
                       help="rows of the synthetic flights table (ignored with --csv)")
        p.add_argument("--algorithm", default="ifocus")
        p.add_argument("--delta", type=float, default=0.05)
        p.add_argument("--resolution", type=float, default=0.0)
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--store", default=None, metavar="DIR",
                       help="run against a durable store: the table's cached "
                       "index maps from disk if present, and cold builds persist")
        p.add_argument("--csv", default=None, metavar="PATH",
                       help="bind the table named in the SQL to this CSV file")
        p.add_argument("--group-columns", default=None, metavar="A,B",
                       help="CSV columns to keep as strings (group-by keys)")
        p.add_argument("--value-columns", default=None, metavar="X,Y",
                       help="CSV columns that must parse as numbers")
        p.add_argument("--engine", default="needletail",
                       help="execution substrate: needletail, memory, or noindex")
        p.add_argument("--shards", type=int, default=1,
                       help="partition the engine into N parallel shards "
                       "(1 = unsharded; sharded runs merge deterministically)")
        p.add_argument("--workers", type=int, default=None,
                       help="thread-pool width for the shard fan-out "
                       "(default: one worker per shard)")
        p.add_argument("--executor", choices=("thread", "process"), default="thread",
                       help="shard fan-out executor: 'thread' (in-process) or "
                       "'process' (one worker process per shard over shared "
                       "memory; falls back to threads, with a caveat, when the "
                       "data cannot cross the process boundary)")
        p.add_argument("--max-samples", type=int, default=None,
                       help="cap total tuples for --engine noindex (skewed tables "
                       "with conflicting groups may otherwise sample unboundedly; "
                       "hitting the cap voids the guarantee and prints a caveat)")
        p.add_argument("--deadline-ms", type=float, default=None,
                       help="time budget in milliseconds; on expiry a one-shot "
                       "run finalizes remaining groups at their current "
                       "estimates (wider intervals, exit code 3); per-window "
                       "budget for windowed queries")
        p.add_argument("--max-retries", type=int, default=2,
                       help="retry budget for transient source-scan IO failures "
                       "(exponential backoff; retries are surfaced as caveats)")
        p.add_argument("--window", type=float, default=None, metavar="SIZE",
                       required=window_required,
                       help="make the query continuous: evaluate once per "
                       "window of SIZE rows (or SIZE units of --window-on)")
        p.add_argument("--window-every", type=float, default=None, metavar="STRIDE",
                       help="window stride; omit to tumble, < SIZE to slide")
        p.add_argument("--window-on", default=None, metavar="COL",
                       help="numeric event-time column (default: row-count "
                       "windows in arrival order)")
        p.add_argument("--late", choices=("drop", "recompute", "error"),
                       default="drop",
                       help="policy for rows arriving after their time window "
                       "closed (time windows only)")
        p.add_argument("--allowed-lateness", type=float, default=0.0,
                       help="watermark slack: hold windows open this many time "
                       "units past their end before closing")
        p.add_argument("--max-windows", type=int, default=None,
                       help="stop after this many closed windows (bounds "
                       "subscriptions over unbounded sources)")

    qry = sub.add_parser(
        "query",
        help="run a SQL query over a synthetic flights table or your own CSV",
    )
    add_query_flags(qry, window_required=False)
    qry.add_argument("--stream", action="store_true",
                     help="print partial results as groups finalize")
    qry.set_defaults(fn=_cmd_query)

    stm = sub.add_parser(
        "stream",
        help="run a windowed SQL query continuously, printing each window "
        "as it closes (repro.streaming)",
    )
    add_query_flags(stm, window_required=True)
    stm.add_argument("--updates", action="store_true",
                     help="also print per-group partial updates while each "
                     "window evaluates")
    stm.add_argument("--resume", action="store_true",
                     help="with --store: continue an interrupted stream from "
                     "its durable checkpoint; already-delivered windows are "
                     "skipped and the rest replay bit-identically")
    stm.set_defaults(fn=_cmd_stream)

    sto = sub.add_parser(
        "store",
        help="maintain a durable store: build (prime) caches, ls, verify, gc",
    )
    sto_sub = sto.add_subparsers(dest="store_command", required=True)

    sto_build = sto_sub.add_parser(
        "build",
        help="attach sources and persist their index/population builds "
        "so later sessions (and `serve --store`) boot warm",
    )
    sto_build.add_argument("store", metavar="STORE", help="store directory")
    add_catalog_flags(sto_build, store_flag=False)
    sto_build.add_argument("--table", default=None,
                           help="build only this table (default: every "
                           "attached table)")
    sto_build.add_argument("--group-by", default=None, metavar="COL",
                           help="index group column (default: the table's "
                           "first string column)")
    sto_build.add_argument("--value", default=None, metavar="COL",
                           help="index value column (default: the table's "
                           "first numeric column)")
    sto_build.add_argument("--bound", type=float, default=None,
                           help="value bound c for the build (default: "
                           "derived from the data)")
    sto_build.set_defaults(fn=_cmd_store_build)

    sto_ls = sto_sub.add_parser(
        "ls", help="summarize the store: tables, builds, segments, bytes"
    )
    sto_ls.add_argument("store", metavar="STORE", help="store directory")
    sto_ls.set_defaults(fn=_cmd_store_ls)

    sto_verify = sto_sub.add_parser(
        "verify",
        help="checksum every segment against its header and catalog row "
        "(exit 1 naming each corrupt file)",
    )
    sto_verify.add_argument("store", metavar="STORE", help="store directory")
    sto_verify.add_argument("--repair", action="store_true",
                            help="quarantine corrupt builds (they rebuild from "
                            "source on next use) and sweep orphaned files, "
                            "instead of exiting 1")
    sto_verify.set_defaults(fn=_cmd_store_verify)

    sto_gc = sto_sub.add_parser(
        "gc", help="remove segment files the catalog doesn't own"
    )
    sto_gc.add_argument("store", metavar="STORE", help="store directory")
    sto_gc.set_defaults(fn=_cmd_store_gc)

    srv = sub.add_parser(
        "serve",
        help="run the always-on multi-tenant HTTP query service (see repro.serve)",
    )
    add_catalog_flags(srv)
    srv.add_argument("--host", default="127.0.0.1",
                     help="bind address (default loopback; put a reverse proxy "
                     "in front for anything else)")
    srv.add_argument("--port", type=int, default=8765,
                     help="listen port (0 picks a free ephemeral port)")
    srv.add_argument("--sessions", type=int, default=2,
                     help="session pool size; all sessions share one catalog")
    srv.add_argument("--max-concurrent", type=int, default=4,
                     help="default per-tenant concurrent-execution quota")
    srv.add_argument("--queue-limit", type=int, default=16,
                     help="default per-tenant admission-queue depth; beyond "
                     "this, requests are shed with a structured 429")
    srv.add_argument("--deadline-ms", type=float, default=None,
                     help="default per-tenant query deadline (anytime stop)")
    srv.add_argument("--cache-entries", type=int, default=256,
                     help="result-cache capacity (LRU; 0 disables caching)")
    srv.add_argument("--seed", type=int, default=0,
                     help="default seed for requests that omit one (a fixed "
                     "default keeps identical requests cache-identical)")
    srv.add_argument("--tenant", action="append",
                     metavar="NAME=MAX[:QUEUE[:DEADLINE_MS]]",
                     help="provision one tenant explicitly (repeatable), e.g. "
                     "--tenant dashboards=8:32:2000")
    srv.add_argument("--drain-timeout", type=float, default=30.0,
                     help="seconds SIGTERM lets in-flight queries finish "
                     "before cooperative cancellation (SIGINT stops "
                     "immediately; /readyz turns 503 while draining)")
    srv.set_defaults(fn=_cmd_serve)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
