"""Command-line interface: demos, experiments, and ad-hoc queries.

Usage::

    python -m repro demo
    python -m repro list
    python -m repro experiment fig3a [--scale smoke|paper]
    python -m repro bench-export [--output BENCH_micro.json]
    python -m repro query "SELECT carrier, AVG(arrival_delay) FROM flights GROUP BY carrier" \
        [--rows 100000] [--algorithm ifocus] [--delta 0.05] [--resolution 0] [--seed 0]

``query`` runs against a freshly synthesized flights table (the offline
stand-in for the paper's dataset); any table name in the SQL is accepted and
bound to it.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable

from repro.experiments import (
    ablation_batching,
    ablation_cost_model,
    ablation_kappa,
    ablation_removal_policy,
    PAPER,
    SMOKE,
    fig3a_percentage_vs_size,
    fig3b_samples_vs_time,
    fig3c_percentage_vs_delta,
    fig4_runtime_vs_size,
    fig5a_heuristic_accuracy,
    fig5b_heuristic_accuracy_hard,
    fig5c_active_groups_convergence,
    fig6a_incorrect_pairs,
    fig6b_percentage_vs_groups,
    fig6c_difficulty_vs_groups,
    fig7a_percentage_vs_skew,
    fig7b_percentage_vs_std,
    fig7c_difficulty_vs_std,
    table1_execution_trace,
    table3_flights_runtimes,
)
from repro.experiments.headline import headline_claims

EXPERIMENTS: dict[str, Callable] = {
    "table1": table1_execution_trace,
    "fig3a": fig3a_percentage_vs_size,
    "fig3b": fig3b_samples_vs_time,
    "fig3c": fig3c_percentage_vs_delta,
    "fig4": fig4_runtime_vs_size,
    "fig5a": fig5a_heuristic_accuracy,
    "fig5b": fig5b_heuristic_accuracy_hard,
    "fig5c": fig5c_active_groups_convergence,
    "fig6a": fig6a_incorrect_pairs,
    "fig6b": fig6b_percentage_vs_groups,
    "fig6c": fig6c_difficulty_vs_groups,
    "fig7a": fig7a_percentage_vs_skew,
    "fig7b": fig7b_percentage_vs_std,
    "fig7c": fig7c_difficulty_vs_std,
    "table3": table3_flights_runtimes,
    "headline": headline_claims,
    "ablation-batching": ablation_batching,
    "ablation-costmodel": ablation_cost_model,
    "ablation-kappa": ablation_kappa,
    "ablation-removal": ablation_removal_policy,
}


def _cmd_demo(_args: argparse.Namespace) -> int:
    import numpy as np

    from repro import InMemoryEngine, run_ifocus
    from repro.viz import render_barchart

    airlines = {"AA": 30, "JB": 15, "UA": 85, "DL": 45, "US": 60, "AL": 20, "SW": 23}
    rng = np.random.default_rng(7)
    engine = InMemoryEngine.from_arrays(
        names=list(airlines),
        arrays=[np.clip(rng.normal(m, 15.0, 200_000), 0, 100) for m in airlines.values()],
        c=100.0,
    )
    result = run_ifocus(engine, delta=0.05, seed=42)
    print(render_barchart(result, title="Average delay by airline (IFOCUS, delta=0.05)"))
    total = engine.population.total_size
    print(
        f"\nsampled {result.total_samples:,} of {total:,} rows "
        f"({100 * result.total_samples / total:.2f}%); "
        "bar order is correct with probability >= 0.95"
    )
    return 0


def _cmd_list(_args: argparse.Namespace) -> int:
    print("available experiments:")
    for name in EXPERIMENTS:
        print(f"  {name}")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    if args.name not in EXPERIMENTS:
        print(f"unknown experiment {args.name!r}; try: python -m repro list", file=sys.stderr)
        return 2
    scale = PAPER if args.scale == "paper" else SMOKE
    fig = EXPERIMENTS[args.name](scale)
    print(fig.format())
    return 0


def _cmd_bench_export(args: argparse.Namespace) -> int:
    from repro.bench import export_micro

    path = export_micro(args.output)
    print(f"wrote {path}")
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    from repro.data.flights import make_flights_table
    from repro.query import execute_query, parse_query

    query = parse_query(args.sql)
    table = make_flights_table(num_rows=args.rows, seed=args.seed)
    out = execute_query(
        query,
        {query.table: table},
        algorithm=args.algorithm,
        delta=args.delta,
        resolution=args.resolution,
        seed=args.seed,
    )
    for agg, result in out.results.items():
        print(f"{agg} (algorithm={result.algorithm}, samples={result.total_samples:,}):")
        pairs = sorted(zip(out.labels, result.estimates), key=lambda p: -p[1])
        for label, value in pairs:
            print(f"  {label:>12}  {value:12.3f}")
    if out.dropped_by_having:
        print(f"HAVING dropped: {out.dropped_by_having}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Rapid sampling for visualizations with ordering guarantees (VLDB 2015)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="render the Figure-1 bar chart approximately")
    demo.set_defaults(fn=_cmd_demo)

    lst = sub.add_parser("list", help="list reproducible experiments")
    lst.set_defaults(fn=_cmd_list)

    exp = sub.add_parser("experiment", help="run one figure/table reproduction")
    exp.add_argument("name", help="experiment id, e.g. fig3a, table3, headline")
    exp.add_argument("--scale", choices=("smoke", "paper"), default="smoke")
    exp.set_defaults(fn=_cmd_experiment)

    bench = sub.add_parser(
        "bench-export",
        help="run the micro benchmark suite and write the normalized BENCH_micro.json",
    )
    bench.add_argument("--output", default="BENCH_micro.json")
    bench.set_defaults(fn=_cmd_bench_export)

    qry = sub.add_parser("query", help="run a SQL query over a synthetic flights table")
    qry.add_argument("sql")
    qry.add_argument("--rows", type=int, default=100_000)
    qry.add_argument("--algorithm", default="ifocus")
    qry.add_argument("--delta", type=float, default=0.05)
    qry.add_argument("--resolution", type=float, default=0.0)
    qry.add_argument("--seed", type=int, default=0)
    qry.set_defaults(fn=_cmd_query)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
