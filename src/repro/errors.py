"""Structured error taxonomy shared across the stack.

Every layer that can fail - data-source scans, shared-memory transport,
worker processes, the planner - classifies its failures along one axis the
resilience layer (:mod:`repro.resilience`) can act on:

* :class:`TransientError` - the operation may succeed if repeated: a flaky
  scan chunk, a crashed worker process that can be respawned and replayed.
  Retry policies (:class:`repro.resilience.retry.RetryPolicy`) only ever
  retry these.
* :class:`FatalError` - repeating cannot help: exhausted restart budgets,
  corrupted state, contract violations.  Surfaces to the caller unchanged.
* :class:`QueryCancelled` - the query's cancel token was triggered
  (``Session.submit()`` future ``cancel()`` or an explicit
  :meth:`repro.resilience.deadline.Deadline.cancel`).  Deliberately *not* a
  :class:`ReproError` subclass pair of transient/fatal: cancellation is a
  caller decision, not a failure of the stack.

``WorkerCrashed`` (a :class:`TransientError`) doubles as ``RuntimeError``
for backwards compatibility - pre-resilience callers caught worker deaths
as RuntimeError and must keep working unchanged.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "TransientError",
    "FatalError",
    "StorageError",
    "WorkerCrashed",
    "QueryCancelled",
]


class ReproError(Exception):
    """Base class of the repro failure taxonomy."""


class TransientError(ReproError):
    """A failure that may not recur: retrying the operation is sound."""


class FatalError(ReproError):
    """A failure retrying cannot fix; it must surface to the caller."""


class StorageError(FatalError):
    """A durable-storage segment or catalog is unreadable or corrupt.

    Raised by :mod:`repro.storage` when an on-disk segment fails its
    structural checks (bad magic, unsupported version, truncated payload)
    or its checksum verification - never silently served as garbage reads.
    Fatal: re-reading the same bytes cannot help; the store needs a
    ``repro store verify``/``gc`` pass or a rebuild.
    """


class WorkerCrashed(TransientError, RuntimeError):
    """A shard worker process died before answering a command.

    Transient: the process pool can respawn the worker from the parent-owned
    shared-memory payloads and replay its command log (deterministic
    recovery, see :mod:`repro.engines.procpool`).  Also a ``RuntimeError``
    so callers from before the taxonomy existed keep catching it.
    """


class QueryCancelled(ReproError):
    """The query's cancel token fired; sampling stopped cooperatively."""
