"""Text trend-line rendering for ordinal (e.g. time) group-by attributes.

Trend lines are the second visualization type the paper targets (Problem 3):
the x axis is ordinal, and only comparisons between *adjacent* groups matter.
This module renders a compact ASCII line chart and annotates the direction of
each consecutive step, which is exactly the visual property the trends
variant guarantees.
"""

from __future__ import annotations

import numpy as np

__all__ = ["render_trendline", "step_directions"]


def step_directions(values: np.ndarray, resolution: float = 0.0) -> list[str]:
    """Direction of each consecutive step: 'up', 'down', or 'flat'.

    Steps smaller than ``resolution`` in magnitude are reported as 'flat' -
    these are the pairs the resolution relaxation leaves unconstrained.
    """
    values = np.asarray(values, dtype=np.float64)
    out = []
    for i in range(values.shape[0] - 1):
        d = values[i + 1] - values[i]
        if abs(d) <= resolution:
            out.append("flat")
        elif d > 0:
            out.append("up")
        else:
            out.append("down")
    return out


def render_trendline(
    labels: list[str],
    values: np.ndarray,
    height: int = 10,
    title: str = "",
    resolution: float = 0.0,
) -> str:
    """Render values as an ASCII trend line with step-direction annotations."""
    values = np.asarray(values, dtype=np.float64)
    if len(labels) != values.shape[0]:
        raise ValueError("labels and values must have equal length")
    if height < 2:
        raise ValueError("height must be >= 2")
    k = values.shape[0]
    lo, hi = float(values.min()), float(values.max())
    span = max(hi - lo, 1e-12)
    rows = [[" "] * k for _ in range(height)]
    levels = ((values - lo) / span * (height - 1)).round().astype(int)
    for x, level in enumerate(levels):
        rows[height - 1 - level][x] = "*"
    lines: list[str] = []
    if title:
        lines.append(title)
    for r, row in enumerate(rows):
        axis_val = hi - span * r / (height - 1)
        lines.append(f"{axis_val:8.2f} | " + "  ".join(row))
    lines.append(" " * 10 + "-" * (3 * k - 2))
    label_row = " " * 11 + "  ".join(lbl[:1] for lbl in labels)
    lines.append(label_row)
    arrows = {"up": "/", "down": "\\", "flat": "-"}
    dirs = step_directions(values, resolution)
    lines.append(" " * 11 + " " + "  ".join(arrows[d] for d in dirs))
    lines.append("legend: " + ", ".join(f"{lbl[:1]}={lbl}" for lbl in labels))
    return "\n".join(lines)
