"""Text bar-chart rendering with confidence-interval whiskers.

The paper's output artifact is a bar chart (Fig. 1).  This renderer produces
the terminal equivalent: one row per group with a proportional bar, the
estimate, and (for unfinished or approximate groups) the +/- half-width.  It
is used by the examples and by the partial-results demo, where the chart
re-renders as groups are finalized.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.types import OrderingResult

__all__ = ["BarChart", "render_barchart"]


@dataclass
class BarChart:
    """A renderable bar chart: labels, values, optional half-widths."""

    labels: list[str]
    values: np.ndarray
    half_widths: np.ndarray | None = None
    title: str = ""
    value_max: float | None = None
    width: int = 48

    def __post_init__(self) -> None:
        self.values = np.asarray(self.values, dtype=np.float64)
        if len(self.labels) != self.values.shape[0]:
            raise ValueError("labels and values must have equal length")
        if self.half_widths is not None:
            self.half_widths = np.asarray(self.half_widths, dtype=np.float64)
            if self.half_widths.shape != self.values.shape:
                raise ValueError("half_widths must match values shape")
        if self.width < 8:
            raise ValueError("chart width must be at least 8 columns")

    def render(self, sort: bool = False) -> str:
        """Render to a multi-line string; ``sort`` orders bars by value."""
        idx = np.argsort(self.values, kind="stable")[::-1] if sort else np.arange(len(self.labels))
        vmax = self.value_max if self.value_max is not None else float(self.values.max())
        vmax = max(vmax, 1e-12)
        label_w = max(len(self.labels[i]) for i in idx)
        lines: list[str] = []
        if self.title:
            lines.append(self.title)
            lines.append("-" * max(len(self.title), 8))
        for i in idx:
            frac = min(max(self.values[i] / vmax, 0.0), 1.0)
            bar = "#" * max(int(round(frac * self.width)), 1 if self.values[i] > 0 else 0)
            suffix = f" {self.values[i]:.2f}"
            if self.half_widths is not None and self.half_widths[i] > 0:
                suffix += f" (+/-{self.half_widths[i]:.2f})"
            lines.append(f"{self.labels[i]:>{label_w}} |{bar:<{self.width}}|{suffix}")
        return "\n".join(lines)


def render_barchart(result: OrderingResult, labels: list[str] | None = None, **kwargs) -> str:
    """Render an :class:`OrderingResult` as a text bar chart.

    Half-widths come from the per-group outcomes, so unfinished/approximate
    groups show their residual uncertainty like the error bars the
    incremental-visualization user studies recommend (Section 7).
    """
    if labels is None:
        labels = [g.name for g in result.groups]
    widths = np.array([g.half_width for g in result.groups])
    chart = BarChart(
        labels=labels,
        values=result.estimates,
        half_widths=widths,
        title=kwargs.pop("title", f"{result.algorithm} ({result.total_samples} samples)"),
        **kwargs,
    )
    return chart.render(sort=kwargs.pop("sort", False))
