"""Visual-property checkers: the correctness criteria of Problems 1-5.

These functions compare an algorithm's estimates against the true group
means and decide whether the *visual* property the paper cares about holds:

* :func:`check_ordering` - the correct ordering property (Problem 1), with
  the optional resolution relaxation of Problem 2 (pairs of true means within
  r of each other may appear in either order);
* :func:`incorrect_pairs` - the number of violating pairs, the quantity
  plotted in Fig. 6(a);
* :func:`check_neighbor_ordering` - the trend-line property (Problem 3):
  only consecutive groups must be ordered correctly;
* :func:`check_top_t` - the top-t property (Problem 4);
* :func:`pair_accuracy` - the fraction of correctly ordered pairs, used by
  the allowing-mistakes variant (Problem 5).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "check_ordering",
    "incorrect_pairs",
    "pair_accuracy",
    "check_neighbor_ordering",
    "check_top_t",
]


def _as_arrays(estimates, true_means) -> tuple[np.ndarray, np.ndarray]:
    est = np.asarray(estimates, dtype=np.float64)
    true = np.asarray(true_means, dtype=np.float64)
    if est.shape != true.shape or est.ndim != 1:
        raise ValueError(f"shape mismatch: estimates {est.shape} vs true {true.shape}")
    return est, true


def incorrect_pairs(estimates, true_means, resolution: float = 0.0) -> int:
    """Number of pairs (i, j) ordered differently by estimates and truth.

    A pair counts as incorrect when |mu_i - mu_j| > resolution but the
    estimates do not reproduce the strict order (ties among estimates count
    as incorrect, since the drawn bars would not show the true relation).
    """
    est, true = _as_arrays(estimates, true_means)
    k = est.shape[0]
    if k < 2:
        return 0
    dt = true[:, None] - true[None, :]
    de = est[:, None] - est[None, :]
    matters = np.triu(np.abs(dt) > resolution, k=1)
    wrong = np.sign(de) != np.sign(dt)
    return int((matters & wrong).sum())


def check_ordering(estimates, true_means, resolution: float = 0.0) -> bool:
    """True iff the correct ordering property holds (Problem 1 / Problem 2).

    For every pair with |mu_i - mu_j| > resolution, mu_i > mu_j must imply
    nu_i > nu_j.  Pairs of true means within ``resolution`` are
    unconstrained.
    """
    return incorrect_pairs(estimates, true_means, resolution=resolution) == 0


def pair_accuracy(estimates, true_means, resolution: float = 0.0) -> float:
    """Fraction of constrained pairs ordered correctly (1.0 if none apply)."""
    est, true = _as_arrays(estimates, true_means)
    k = est.shape[0]
    if k < 2:
        return 1.0
    dt = true[:, None] - true[None, :]
    matters = np.triu(np.abs(dt) > resolution, k=1)
    total = int(matters.sum())
    if total == 0:
        return 1.0
    wrong = incorrect_pairs(est, true, resolution=resolution)
    return 1.0 - wrong / total


def check_neighbor_ordering(estimates, true_means, resolution: float = 0.0) -> bool:
    """Trend-line correctness (Problem 3): adjacent x-axis groups only.

    Groups are taken in input order (the ordinal x axis); for every
    consecutive pair with |mu_i - mu_{i+1}| > resolution the estimates must
    reproduce the strict order.
    """
    est, true = _as_arrays(estimates, true_means)
    for i in range(est.shape[0] - 1):
        dt = true[i + 1] - true[i]
        if abs(dt) <= resolution:
            continue
        if np.sign(est[i + 1] - est[i]) != np.sign(dt):
            return False
    return True


def check_top_t(
    estimates,
    true_means,
    t: int,
    resolution: float = 0.0,
    largest: bool = True,
) -> bool:
    """Top-t correctness (Problem 4).

    The t groups with the largest (or smallest) estimates must be the true
    top-t, and their relative order must be correct - except that groups
    whose true means are within ``resolution`` of each other (including of
    the t-th boundary) may swap.
    """
    est, true = _as_arrays(estimates, true_means)
    k = est.shape[0]
    if not 1 <= t <= k:
        raise ValueError(f"t must be in [1, {k}], got {t}")
    sign = -1.0 if largest else 1.0
    est_order = np.argsort(sign * est, kind="stable")[:t]
    true_sorted = np.argsort(sign * true, kind="stable")
    true_top = set(int(i) for i in true_sorted[:t])
    boundary = true[true_sorted[t - 1]]
    for gid in est_order:
        if int(gid) in true_top:
            continue
        # A swap across the boundary is allowed only within resolution.
        if abs(true[gid] - boundary) > resolution:
            return False
    # Relative order within the reported top-t.
    top_est = est[est_order]
    top_true = true[est_order]
    return check_ordering(top_est, top_true, resolution=resolution)
