"""Ordering-guaranteed histograms.

The paper names histograms alongside bar charts as its target visualizations
(Section 1: "a bar chart, or a histogram; these are the most commonly used
visualization types").  A histogram is the COUNT-per-bin group-by query over
a binned attribute, so the Section 6.3.2 machinery applies directly:

* with a bitmap index on the binned attribute, bin counts are exact index
  metadata (:func:`exact_histogram`);
* without one, bin membership of a uniformly random tuple is a Bernoulli
  draw, and IFOCUS orders the bin heights with probability >= 1 - delta
  after sampling a small fraction of rows
  (:func:`approximate_histogram`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.types import OrderingResult
from repro.data.distributions import TwoPoint
from repro.data.population import Population, VirtualGroup
from repro.engines.memory import InMemoryEngine
from repro.extensions.counts import run_count_unknown
from repro.viz.barchart import BarChart

__all__ = ["Histogram", "exact_histogram", "approximate_histogram", "bin_labels"]


def bin_labels(edges: np.ndarray) -> list[str]:
    """Human-readable labels "[lo, hi)" for consecutive bin edges."""
    edges = np.asarray(edges, dtype=np.float64)
    if edges.ndim != 1 or edges.shape[0] < 2:
        raise ValueError("need at least two bin edges")
    if np.any(np.diff(edges) <= 0):
        raise ValueError("bin edges must be strictly increasing")
    out = []
    for i in range(edges.shape[0] - 1):
        closer = "]" if i == edges.shape[0] - 2 else ")"
        out.append(f"[{edges[i]:g}, {edges[i + 1]:g}{closer}")
    return out


@dataclass
class Histogram:
    """A (possibly approximate) histogram over one numeric attribute."""

    edges: np.ndarray
    counts: np.ndarray
    exact: bool
    result: OrderingResult | None = None

    @property
    def labels(self) -> list[str]:
        return bin_labels(self.edges)

    @property
    def total(self) -> float:
        return float(self.counts.sum())

    def render(self, width: int = 40, title: str = "") -> str:
        chart = BarChart(
            labels=self.labels,
            values=self.counts.astype(np.float64),
            title=title or ("histogram (exact)" if self.exact else "histogram (approximate)"),
            width=width,
        )
        return chart.render()


def _bin_counts(values: np.ndarray, edges: np.ndarray) -> np.ndarray:
    idx = np.clip(np.digitize(values, edges[1:-1], right=False), 0, len(edges) - 2)
    inside = (values >= edges[0]) & (values <= edges[-1])
    return np.bincount(idx[inside], minlength=len(edges) - 1)


def exact_histogram(values: np.ndarray, edges: np.ndarray) -> Histogram:
    """Exact bin counts (what a bitmap index on the binned attribute gives)."""
    values = np.asarray(values, dtype=np.float64)
    edges = np.asarray(edges, dtype=np.float64)
    bin_labels(edges)  # validates
    return Histogram(edges=edges, counts=_bin_counts(values, edges), exact=True)


def approximate_histogram(
    values: np.ndarray,
    edges: np.ndarray,
    *,
    delta: float = 0.05,
    resolution_fraction: float = 0.0,
    seed: int | np.random.Generator | None = None,
    max_rounds: int | None = None,
) -> Histogram:
    """Sampling-based histogram whose bar *ordering* is guaranteed.

    Bin-membership indicators of uniformly random tuples drive the COUNT
    estimation (Section 6.3.2); with probability >= 1 - delta the relative
    heights of any two bins whose true counts differ by more than
    ``resolution_fraction`` of the rows are correct.
    """
    values = np.asarray(values, dtype=np.float64)
    edges = np.asarray(edges, dtype=np.float64)
    labels = bin_labels(edges)
    true_counts = _bin_counts(values, edges)
    total = int(true_counts.sum())
    if total == 0:
        raise ValueError("no values fall inside the bin range")
    groups = []
    for label, count in zip(labels, true_counts):
        p = float(count) / total
        size = max(int(count), 1)
        groups.append(VirtualGroup(label, TwoPoint(min(max(p, 0.0), 1.0), 0.0, 1.0), size))
    population = Population(groups=groups, c=1.0, name="histogram-bins")
    engine = InMemoryEngine(population)
    result = run_count_unknown(
        engine,
        delta=delta,
        resolution_fraction=resolution_fraction,
        seed=seed,
        max_rounds=max_rounds,
    )
    # run_count_unknown scales by the indicator population's total (sum of
    # nominal sizes); rescale to the true row count.
    scale = total / float(population.sizes().sum())
    return Histogram(
        edges=edges,
        counts=result.estimates * scale,
        exact=False,
        result=result,
    )
