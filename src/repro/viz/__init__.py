"""Visualization layer: property checkers and text renderers."""

from repro.viz.barchart import BarChart, render_barchart
from repro.viz.histogram import (
    Histogram,
    approximate_histogram,
    bin_labels,
    exact_histogram,
)
from repro.viz.properties import (
    check_neighbor_ordering,
    check_ordering,
    check_top_t,
    incorrect_pairs,
    pair_accuracy,
)
from repro.viz.trendline import render_trendline, step_directions

__all__ = [
    "BarChart",
    "render_barchart",
    "Histogram",
    "approximate_histogram",
    "bin_labels",
    "exact_histogram",
    "check_neighbor_ordering",
    "check_ordering",
    "check_top_t",
    "incorrect_pairs",
    "pair_accuracy",
    "render_trendline",
    "step_directions",
]
