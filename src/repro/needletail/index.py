"""Per-value bitmap index over a table column (paper Section 4).

For every distinct value of the indexed attribute the index holds one bitmap
with bit i set iff row i matches the value.  The bitmaps are kept both as a
:class:`~repro.needletail.hierarchical.HierarchicalBitmap` (fast select for
sampling) and, on request, in the compressed run-length form for storage
accounting - the paper's point being that low-cardinality bitmap indexes
compress well enough to stay in memory.

The index answers:

* ``rowids_for(value)`` / ``sample_rowids(value, ranks)`` - random tuple
  retrieval for one group, the core NEEDLETAIL operation;
* ``bitmap_for(value)`` plus AND/OR composition with *predicate* bitmaps,
  which is how WHERE clauses restrict sampling (Section 6.3.3).
"""

from __future__ import annotations

import numpy as np

from repro.needletail.bitvector import BitVector
from repro.needletail.hierarchical import HierarchicalBitmap
from repro.needletail.rle import RunLengthBitmap
from repro.needletail.table import Table

__all__ = ["BitmapIndex"]


class BitmapIndex:
    """Bitmap index on one column of a table."""

    def __init__(self, table: Table, column: str, fanout: int = 64) -> None:
        self.table = table
        self.column = column
        values = table.column(column)
        self._length = table.num_rows
        self.keys = np.unique(values)
        self._bitmaps: dict[object, HierarchicalBitmap] = {}
        for key in self.keys:
            mask = values == key
            self._bitmaps[self._norm(key)] = HierarchicalBitmap.from_bools(mask, fanout=fanout)

    @staticmethod
    def _norm(key) -> object:
        """Normalize numpy scalars so Python literals also hit the dict."""
        if isinstance(key, np.generic):
            return key.item()
        return key

    # -- lookups ----------------------------------------------------------------
    @property
    def cardinality(self) -> int:
        return len(self.keys)

    def __contains__(self, key) -> bool:
        return self._norm(key) in self._bitmaps

    def bitmap_for(self, key) -> HierarchicalBitmap:
        norm = self._norm(key)
        if norm not in self._bitmaps:
            raise KeyError(f"value {key!r} not present in index on {self.column!r}")
        return self._bitmaps[norm]

    def count_for(self, key) -> int:
        """Number of rows matching ``key`` (group size n_i)."""
        return self.bitmap_for(key).count()

    def rowids_for(self, key) -> np.ndarray:
        """All rowids matching ``key``, ascending."""
        return self.bitmap_for(key).bits.set_positions()

    def sample_rowids(self, key, ranks: np.ndarray) -> np.ndarray:
        """Rowids of the given 0-based ranks within the value's bitmap.

        Passing uniform random ranks yields uniform random matching rows -
        this is NEEDLETAIL's sampling primitive.
        """
        return self.bitmap_for(key).select_many(np.asarray(ranks, dtype=np.int64))

    # -- predicate composition ----------------------------------------------------
    def restricted_bitvector(self, key, predicate: BitVector | None) -> BitVector:
        """The value's bitmap ANDed with an optional predicate bitmap."""
        base = self.bitmap_for(key).bits
        if predicate is None:
            return base
        return base & predicate

    # -- storage accounting ---------------------------------------------------------
    def compressed(self) -> dict[object, RunLengthBitmap]:
        """Run-length-compressed form of every value bitmap."""
        return {
            key: RunLengthBitmap.from_bitvector(hb.bits)
            for key, hb in self._bitmaps.items()
        }

    def storage_bytes(self, compressed: bool = True) -> int:
        """Total index footprint in bytes (compressed or raw bitmaps)."""
        if compressed:
            return sum(b.storage_bytes() for b in self.compressed().values())
        raw_one = (self._length + 7) // 8
        return raw_one * self.cardinality

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BitmapIndex({self.table.name}.{self.column}, "
            f"cardinality={self.cardinality}, rows={self._length})"
        )
