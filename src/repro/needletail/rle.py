"""Run-length-compressed bitmap (WAH-style).

Bitmap indexes over low-cardinality attributes compress extremely well
because each value's bitmap is mostly zeros with clustered ones; word-aligned
hybrid (WAH) codes and friends exploit exactly this (the paper cites Wu et
al., Koudas).  This module implements the run-length layer NEEDLETAIL relies
on for storing per-value bitmaps compactly in memory, with:

* lossless compress/decompress to and from :class:`~repro.needletail.bitvector.BitVector`;
* AND / OR / NOT directly on the run representation (two-pointer merge);
* rank/select on the compressed form via cumulative run lengths - no
  decompression needed for sampling;
* a ``storage_bytes`` estimate used by the storage-footprint accounting.

Runs are kept as two parallel arrays (start positions and a first-run-value
flag); this is the classic sorted-boundaries representation, equivalent to
WAH fills with unbounded run length.
"""

from __future__ import annotations

import numpy as np

from repro.needletail.bitvector import BitVector

__all__ = ["RunLengthBitmap"]


class RunLengthBitmap:
    """A bitmap stored as alternating runs of equal bits.

    ``boundaries`` holds the start position of every run after the first;
    ``first_value`` is the bit value of run 0.  Run i spans
    [starts[i], starts[i+1]) with value first_value XOR (i odd).
    """

    def __init__(self, boundaries: np.ndarray, first_value: bool, length: int) -> None:
        boundaries = np.asarray(boundaries, dtype=np.int64)
        if boundaries.ndim != 1:
            raise ValueError("boundaries must be 1-D")
        if boundaries.size:
            if boundaries[0] <= 0 or boundaries[-1] >= length:
                raise ValueError("boundaries must lie strictly inside (0, length)")
            if np.any(np.diff(boundaries) <= 0):
                raise ValueError("boundaries must be strictly increasing")
        self._b = boundaries
        self._first = bool(first_value)
        self._length = int(length)
        # Set-run (starts, lengths, cumulative counts), cached on first use:
        # the run representation is immutable (logical ops build new
        # bitmaps), and rank/select - including the scalar fast path -
        # would otherwise recompute these O(num_runs) arrays per call.
        self._set_runs: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None

    # -- construction -------------------------------------------------------
    @classmethod
    def from_bools(cls, bits: np.ndarray) -> "RunLengthBitmap":
        bits = np.asarray(bits, dtype=bool)
        if bits.shape[0] == 0:
            return cls(np.zeros(0, dtype=np.int64), False, 0)
        boundaries = np.flatnonzero(np.diff(bits)) + 1
        return cls(boundaries, bool(bits[0]), bits.shape[0])

    @classmethod
    def from_bitvector(cls, bv: BitVector) -> "RunLengthBitmap":
        return cls.from_bools(bv.to_bools())

    @classmethod
    def from_mapped(
        cls, boundaries: np.ndarray, first_value: bool, length: int
    ) -> "RunLengthBitmap":
        """Construct over run boundaries mapped read-only from disk.

        The boundaries array (e.g. a storage-segment ``np.memmap``) is
        validated with reads only and used as-is - the run representation
        is immutable, so a read-only mapping is a full-function bitmap
        (rank/select/logical ops all work; they allocate fresh arrays).
        """
        return cls(boundaries, first_value, length)

    @classmethod
    def zeros(cls, length: int) -> "RunLengthBitmap":
        return cls(np.zeros(0, dtype=np.int64), False, length)

    @classmethod
    def ones(cls, length: int) -> "RunLengthBitmap":
        return cls(np.zeros(0, dtype=np.int64), length > 0, length)

    # -- basics --------------------------------------------------------------
    def __len__(self) -> int:
        return self._length

    @property
    def num_runs(self) -> int:
        if self._length == 0:
            return 0
        return int(self._b.size) + 1

    def _starts(self) -> np.ndarray:
        return np.concatenate([[0], self._b])

    def _run_values(self) -> np.ndarray:
        vals = np.zeros(self.num_runs, dtype=bool)
        vals[0::2] = self._first
        vals[1::2] = not self._first
        return vals

    def _run_lengths(self) -> np.ndarray:
        edges = np.concatenate([[0], self._b, [self._length]])
        return np.diff(edges)

    def to_bools(self) -> np.ndarray:
        if self._length == 0:
            return np.zeros(0, dtype=bool)
        return np.repeat(self._run_values(), self._run_lengths())

    def to_bitvector(self) -> BitVector:
        return BitVector.from_bools(self.to_bools())

    def get(self, i: int) -> bool:
        if not 0 <= i < self._length:
            raise IndexError(f"bit {i} out of range [0, {self._length})")
        run = int(np.searchsorted(self._b, i, side="right"))
        return self._first ^ bool(run % 2)

    def count(self) -> int:
        lengths = self._run_lengths()
        vals = self._run_values()
        return int(lengths[vals].sum()) if self._length else 0

    def storage_bytes(self) -> int:
        """In-memory footprint of the compressed form (8 bytes per boundary)."""
        return 8 * int(self._b.size) + 16  # boundaries + header

    def compression_ratio(self) -> float:
        """Uncompressed bitmap bytes / compressed bytes (>1 = wins)."""
        raw = max(self._length / 8.0, 1.0)
        return raw / self.storage_bytes()

    # -- rank / select -------------------------------------------------------
    def _set_run_cumlengths(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(starts, lengths, cumulative set counts) of the *set* runs (cached)."""
        if self._set_runs is None:
            starts = self._starts()
            lengths = self._run_lengths()
            vals = self._run_values()
            s, l = starts[vals], lengths[vals]
            self._set_runs = (s, l, np.cumsum(l))
        return self._set_runs

    def rank(self, i: int) -> int:
        """Number of set bits strictly before position ``i``."""
        if not 0 <= i <= self._length:
            raise IndexError(f"rank position {i} out of range [0, {self._length}]")
        s, l, cum = self._set_run_cumlengths()
        if s.size == 0 or i == 0:
            return 0
        run = int(np.searchsorted(s, i, side="right")) - 1
        if run < 0:
            return 0
        before = int(cum[run - 1]) if run > 0 else 0
        return before + min(int(l[run]), i - int(s[run]))

    def select(self, r: int) -> int:
        """Position of the r-th (0-based) set bit, without decompressing.

        Scalar fast path: one scalar ``searchsorted`` over the set-run
        cumulative lengths - no throwaway 1-element arrays (a regression
        test pins scalar calls off the ``select_many`` array door).
        """
        r = int(r)
        s, _, cum = self._set_run_cumlengths()
        total = int(cum[-1]) if cum.size else 0
        if not 0 <= r < total:
            raise IndexError(f"select rank out of range [0, {total})")
        run = int(np.searchsorted(cum, r, side="right"))
        before = int(cum[run - 1]) if run > 0 else 0
        return int(s[run]) + (r - before)

    def select_many(self, ranks: np.ndarray) -> np.ndarray:
        ranks = np.asarray(ranks, dtype=np.int64)
        s, _, cum = self._set_run_cumlengths()
        total = int(cum[-1]) if cum.size else 0
        if ranks.size == 0:
            return np.zeros(0, dtype=np.int64)
        if np.any((ranks < 0) | (ranks >= total)):
            raise IndexError(f"select rank out of range [0, {total})")
        run = np.searchsorted(cum, ranks, side="right")
        before = np.where(run > 0, cum[np.maximum(run - 1, 0)], 0)
        before = np.where(run > 0, before, 0)
        return s[run] + (ranks - before)

    # -- logical ops -----------------------------------------------------------
    def _check_compatible(self, other: "RunLengthBitmap") -> None:
        if self._length != other._length:
            raise ValueError(f"length mismatch: {self._length} vs {other._length}")

    def _combine(self, other: "RunLengthBitmap", op) -> "RunLengthBitmap":
        self._check_compatible(other)
        if self._length == 0:
            return RunLengthBitmap.zeros(0)
        # Merge run boundaries; evaluate op per merged run; re-coalesce.
        cuts = np.union1d(self._b, other._b)
        starts = np.concatenate([[0], cuts])
        a_run = np.searchsorted(self._b, starts, side="right")
        b_run = np.searchsorted(other._b, starts, side="right")
        a_vals = np.logical_xor(self._first, a_run % 2 == 1)
        b_vals = np.logical_xor(other._first, b_run % 2 == 1)
        vals = op(a_vals, b_vals)
        change = np.flatnonzero(np.diff(vals.astype(np.int8))) + 1
        boundaries = starts[change]
        return RunLengthBitmap(boundaries, bool(vals[0]), self._length)

    def __and__(self, other: "RunLengthBitmap") -> "RunLengthBitmap":
        return self._combine(other, np.logical_and)

    def __or__(self, other: "RunLengthBitmap") -> "RunLengthBitmap":
        return self._combine(other, np.logical_or)

    def __xor__(self, other: "RunLengthBitmap") -> "RunLengthBitmap":
        return self._combine(other, np.logical_xor)

    def __invert__(self) -> "RunLengthBitmap":
        return RunLengthBitmap(self._b.copy(), not self._first, self._length)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RunLengthBitmap):
            return NotImplemented
        return (
            self._length == other._length
            and self._first == other._first
            and np.array_equal(self._b, other._b)
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RunLengthBitmap(length={self._length}, runs={self.num_runs})"
