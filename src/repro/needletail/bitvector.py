"""Uncompressed bitmap with rank/select support.

NEEDLETAIL (paper Section 4) keeps one bitmap per value of every indexed
attribute: bit i is set iff tuple i matches that value.  Random sampling from
a group is then *select*: pick a uniform rank r in [0, popcount) and find the
position of the r-th set bit, which is the rowid to fetch.  This module
implements the flat, word-packed bitmap with vectorized rank/select; the
hierarchical layering the paper uses for constant-time retrieval is in
:mod:`repro.needletail.hierarchical`, and the WAH-style compressed form is in
:mod:`repro.needletail.rle`.

Bits are packed little-endian into uint64 words; numpy's ``bitwise_count``
provides hardware popcount.
"""

from __future__ import annotations

import numpy as np

__all__ = ["BitVector"]

_WORD_BITS = 64

# Byte-level select lookup table: _SELECT_IN_BYTE[b, r] is the bit position of
# the r-th (0-based) set bit of byte value b, or 8 when b has fewer than r+1
# set bits.  Lets batched select finish inside a word with two table gathers
# instead of unpacking 64 bools per word and cumsumming them.
_SELECT_IN_BYTE = np.full((256, 8), 8, dtype=np.uint8)
for _byte in range(256):
    _rank = 0
    for _bit in range(8):
        if (_byte >> _bit) & 1:
            _SELECT_IN_BYTE[_byte, _rank] = _bit
            _rank += 1
del _byte, _rank, _bit


class BitVector:
    """A fixed-length bitmap over positions [0, length)."""

    def __init__(self, words: np.ndarray, length: int) -> None:
        expected = (length + _WORD_BITS - 1) // _WORD_BITS
        words = np.asarray(words, dtype=np.uint64)
        if words.shape != (expected,):
            raise ValueError(f"need {expected} words for length {length}, got {words.shape}")
        self._words = words
        self._length = int(length)
        self._mask_tail()
        self._cum: np.ndarray | None = None  # cumulative popcount cache

    # -- construction -----------------------------------------------------
    @classmethod
    def zeros(cls, length: int) -> "BitVector":
        nwords = (length + _WORD_BITS - 1) // _WORD_BITS
        return cls(np.zeros(nwords, dtype=np.uint64), length)

    @classmethod
    def ones(cls, length: int) -> "BitVector":
        nwords = (length + _WORD_BITS - 1) // _WORD_BITS
        return cls(np.full(nwords, np.uint64(0xFFFFFFFFFFFFFFFF)), length)

    @classmethod
    def from_bools(cls, bits: np.ndarray) -> "BitVector":
        # Little-endian packing: position w*64 + j is bit j of word w.  Word
        # views assume a little-endian host (x86/ARM), like the rest of numpy.
        bits = np.asarray(bits, dtype=bool)
        length = bits.shape[0]
        nwords = (length + _WORD_BITS - 1) // _WORD_BITS
        padded = np.zeros(nwords * _WORD_BITS, dtype=bool)
        padded[:length] = bits
        packed = np.packbits(padded, bitorder="little")
        words = packed.view(np.uint64).copy()
        return cls(words, length)

    @classmethod
    def from_indices(cls, indices: np.ndarray, length: int) -> "BitVector":
        bits = np.zeros(length, dtype=bool)
        bits[np.asarray(indices, dtype=np.int64)] = True
        return cls.from_bools(bits)

    @classmethod
    def from_mapped(
        cls, words: np.ndarray, length: int, cumulative: np.ndarray | None = None
    ) -> "BitVector":
        """Construct over already-masked words mapped read-only from disk.

        The words array (typically a slice of an ``np.memmap``) is used
        as-is - no copy, no tail write (the segment writer stored it with
        the tail masked, which the constructor re-checks read-only).  An
        optional persisted ``cumulative`` popcount array (the rank/select
        acceleration table) seeds the ``_cum`` cache so the first
        rank/select never scans the mapped words to popcount them.
        """
        bv = cls(words, length)
        if cumulative is not None:
            cumulative = np.asarray(cumulative, dtype=np.int64)
            if cumulative.shape != bv._words.shape:
                raise ValueError(
                    f"need {bv._words.shape[0]} cumulative popcounts, "
                    f"got {cumulative.shape}"
                )
            bv._cum = cumulative
        return bv

    # -- internals ---------------------------------------------------------
    def _mask_tail(self) -> None:
        extra = self._words.shape[0] * _WORD_BITS - self._length
        if extra and self._words.shape[0]:
            keep = _WORD_BITS - extra
            mask = np.uint64((1 << keep) - 1) if keep < 64 else np.uint64(0xFFFFFFFFFFFFFFFF)
            # Write only when a tail bit is actually set: words mapped
            # read-only from a storage segment are stored pre-masked, and an
            # unconditional in-place AND would fault on the read-only page.
            last = self._words[-1]
            if last & ~mask:
                self._words[-1] = last & mask

    def _cumulative(self) -> np.ndarray:
        if self._cum is None:
            pops = np.bitwise_count(self._words).astype(np.int64)
            self._cum = np.cumsum(pops)
        return self._cum

    def _invalidate(self) -> None:
        self._cum = None

    # -- basics --------------------------------------------------------------
    def __len__(self) -> int:
        return self._length

    @property
    def words(self) -> np.ndarray:
        """The underlying uint64 words (read-only view)."""
        view = self._words.view()
        view.flags.writeable = False
        return view

    def count(self) -> int:
        """Number of set bits (popcount)."""
        if self._length == 0:
            return 0
        return int(self._cumulative()[-1])

    def get(self, i: int) -> bool:
        if not 0 <= i < self._length:
            raise IndexError(f"bit {i} out of range [0, {self._length})")
        word, off = divmod(i, _WORD_BITS)
        return bool((self._words[word] >> np.uint64(off)) & np.uint64(1))

    def set(self, i: int, value: bool = True) -> None:
        if not 0 <= i < self._length:
            raise IndexError(f"bit {i} out of range [0, {self._length})")
        word, off = divmod(i, _WORD_BITS)
        bit = np.uint64(1) << np.uint64(off)
        if value:
            self._words[word] |= bit
        else:
            self._words[word] &= ~bit
        self._invalidate()

    def to_bools(self) -> np.ndarray:
        if self._length == 0:
            return np.zeros(0, dtype=bool)
        bits = np.unpackbits(self._words.view(np.uint8), bitorder="little")
        return bits[: self._length].astype(bool)

    def set_positions(self) -> np.ndarray:
        """Positions of all set bits, ascending."""
        return np.flatnonzero(self.to_bools())

    # -- rank / select ------------------------------------------------------
    def rank(self, i: int) -> int:
        """Number of set bits strictly before position ``i``."""
        if not 0 <= i <= self._length:
            raise IndexError(f"rank position {i} out of range [0, {self._length}]")
        if i == 0:
            return 0
        word, off = divmod(i, _WORD_BITS)
        cum = self._cumulative()
        total = int(cum[word - 1]) if word > 0 else 0
        if off and word < self._words.shape[0]:
            mask = np.uint64((1 << off) - 1)
            total += int(np.bitwise_count(self._words[word] & mask))
        return total

    def select(self, r: int) -> int:
        """Position of the r-th (0-based) set bit.

        Scalar fast path: pure-int word location plus byte-table finish; no
        throwaway 1-element arrays, unlike routing through ``select_many``
        (a regression test pins scalar calls off the array door).
        """
        r = int(r)
        total = self.count()
        if not 0 <= r < total:
            raise IndexError(f"select rank out of range [0, {total})")
        cum = self._cumulative()
        widx = int(np.searchsorted(cum, r, side="right"))
        local = r - (int(cum[widx - 1]) if widx > 0 else 0)
        word = int(self._words[widx])
        offset = 0
        while True:
            byte = word & 0xFF
            pop = byte.bit_count()
            if local < pop:
                return widx * _WORD_BITS + offset + int(_SELECT_IN_BYTE[byte, local])
            local -= pop
            word >>= 8
            offset += 8

    def select_many(self, ranks: np.ndarray) -> np.ndarray:
        """Vectorized select: positions of the given 0-based ranks.

        Word location is a binary search over the cumulative popcounts; the
        in-word finish uses byte popcounts plus the precomputed
        ``_SELECT_IN_BYTE`` table (8 bytes per word instead of unpacking 64
        bools and cumsumming them).
        """
        ranks = np.asarray(ranks, dtype=np.int64)
        total = self.count()
        if ranks.size == 0:
            return np.zeros(0, dtype=np.int64)
        if np.any((ranks < 0) | (ranks >= total)):
            raise IndexError(f"select rank out of range [0, {total})")
        cum = self._cumulative()
        widx = np.searchsorted(cum, ranks, side="right")
        before = np.where(widx > 0, cum[np.maximum(widx - 1, 0)], 0)
        local = ranks - before  # rank within the target word
        # Little-endian byte view: row i holds the 8 bytes of word widx[i].
        wbytes = np.ascontiguousarray(self._words[widx]).view(np.uint8).reshape(-1, 8)
        bcum = np.cumsum(np.bitwise_count(wbytes), axis=1, dtype=np.int64)
        # Target byte: number of byte-prefixes whose popcount is <= local.
        bidx = np.sum(bcum <= local[:, None], axis=1)
        prev = np.where(
            bidx > 0,
            np.take_along_axis(bcum, np.maximum(bidx - 1, 0)[:, None], axis=1)[:, 0],
            0,
        )
        within = local - prev
        byte_vals = np.take_along_axis(wbytes, bidx[:, None].astype(np.int64), axis=1)[:, 0]
        offsets = bidx * 8 + _SELECT_IN_BYTE[byte_vals, within]
        return widx * _WORD_BITS + offsets.astype(np.int64)

    # -- logical ops ----------------------------------------------------------
    def _check_compatible(self, other: "BitVector") -> None:
        if self._length != other._length:
            raise ValueError(f"length mismatch: {self._length} vs {other._length}")

    def __and__(self, other: "BitVector") -> "BitVector":
        self._check_compatible(other)
        return BitVector(self._words & other._words, self._length)

    def __or__(self, other: "BitVector") -> "BitVector":
        self._check_compatible(other)
        return BitVector(self._words | other._words, self._length)

    def __xor__(self, other: "BitVector") -> "BitVector":
        self._check_compatible(other)
        return BitVector(self._words ^ other._words, self._length)

    def __invert__(self) -> "BitVector":
        return BitVector(~self._words, self._length)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BitVector):
            return NotImplemented
        return self._length == other._length and bool(np.all(self._words == other._words))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BitVector(length={self._length}, count={self.count()})"
