"""NEEDLETAIL: the bitmap-indexed sampling engine (paper Section 4).

The engine wraps a row-store :class:`~repro.needletail.table.Table`, builds a
:class:`~repro.needletail.index.BitmapIndex` on the group-by attribute, and
exposes the standard :class:`~repro.engines.base.SamplingEngine` interface:
every sample is a genuine index operation - pick a uniform rank within the
group's (optionally predicate-restricted) bitmap, *select* the rowid through
the hierarchical bitmap, and fetch the value from the row store.  Sampling
without replacement uses a per-run random permutation of ranks, so the first
m draws are exactly a uniform m-subset.

Costs (simulated I/O + CPU seconds) come from the engine's
:class:`~repro.engines.base.CostModel` - by default the calibrated
:class:`~repro.needletail.cost.NeedletailCostModel`.

Sharding: a NEEDLETAIL engine partitions cleanly under
:class:`~repro.engines.sharded.ShardedEngine` because draw-time state is
per group - each :class:`IndexedGroup` owns its selector bitmap, and lazy
structures (the :class:`~repro.needletail.bitvector.BitVector` select
directory, the cached ``true_mean``) are built inside the one shard thread
that owns the group.  The row-store value column is shared across shards
read-only.
"""

from __future__ import annotations

import weakref

import numpy as np

from repro.data.population import BlockKernel, Group, GroupSampler, Population
from repro.engines.base import CostModel, SamplingEngine
from repro.needletail.bitvector import BitVector
from repro.needletail.cost import NeedletailCostModel
from repro.needletail.index import BitmapIndex
from repro.needletail.table import Table

__all__ = ["IndexedGroup", "NeedletailEngine", "base_bitvector", "BUILD_COUNTS"]

#: Process-wide instrumentation: how many bitmap-index engines were built
#: from scratch ("needletail": a full BitmapIndex construction over the row
#: store) versus opened from memory-mapped storage segments ("mapped", see
#: :mod:`repro.storage`).  The durable-storage tests assert a warm re-open
#: serves queries with *zero* new "needletail" builds - O(1) across
#: restarts, no index rebuild.
BUILD_COUNTS = {"needletail": 0, "mapped": 0}


def base_bitvector(selector) -> BitVector | None:
    """The flat :class:`BitVector` under a selector, or ``None``.

    The one definition of the "has flat bitmap words" predicate: the fused
    select kernel gates fusion on it, and :mod:`repro.engines.shm` gates
    process-shareability on it - the two must never drift.
    """
    base = getattr(selector, "bits", selector)
    return base if isinstance(base, BitVector) else None


class _FusedSelect:
    """One offset-adjusted batched select over many groups' bitmaps.

    The groups' flat bitmap words are concatenated (word-aligned) into one
    long :class:`BitVector`, so a multi-group select becomes a *single*
    vectorized ``select_many``: group j's rank ``r`` maps to combined rank
    ``r + set_offset[j]``, and the combined position maps back to a rowid by
    subtracting ``64 * word_offset[j]``.  Bit-exact with per-group selects -
    each group's word range holds exactly its own bits (tails are already
    masked), so positions and ranks never cross group boundaries.

    The concatenation copies the bitmap words once per *engine* (selectors
    are immutable engine-level state, so the structure is cached across runs
    in ``_FUSED_CACHE``, built lazily on the first fused draw) - the trade
    the fused-sampling fast paths make everywhere: one up-front vectorized
    build buys the removal of a Python-level call per group per batch.
    """

    def __init__(self, selectors: list) -> None:
        bases = [base_bitvector(sel) for sel in selectors]
        self.ok = all(base is not None for base in bases)
        if not self.ok:
            return
        words = [np.asarray(base.words) for base in bases]
        word_counts = np.array([w.shape[0] for w in words], dtype=np.int64)
        set_counts = np.array([base.count() for base in bases], dtype=np.int64)
        self._word_offsets = np.zeros(len(bases), dtype=np.int64)
        np.cumsum(word_counts[:-1], out=self._word_offsets[1:])
        self._set_offsets = np.zeros(len(bases), dtype=np.int64)
        np.cumsum(set_counts[:-1], out=self._set_offsets[1:])
        combined_words = np.concatenate(words)
        self._combined = BitVector(combined_words, combined_words.shape[0] * 64)

    def select(self, slots: np.ndarray, ranks: np.ndarray) -> np.ndarray:
        """Rowids for ``ranks`` (shape ``(m, count)``, row j = slot j's ranks)."""
        adjusted = ranks + self._set_offsets[slots][:, None]
        positions = self._combined.select_many(adjusted.reshape(-1))
        return positions.reshape(ranks.shape) - 64 * self._word_offsets[slots][:, None]


#: Engine-level cache of combined select structures: first IndexedGroup ->
#: (selector list, _FusedSelect).  Weak keys tie each entry's lifetime to
#: its engine's groups; see ``_IndexedBlockKernel._fused_select``.
_FUSED_CACHE: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


class _IndexedBlockKernel(BlockKernel):
    """Fused rank -> select -> fetch for a batch of indexed groups.

    Rank streams stay per group (each group owns its permutation), but both
    halves of the retrieval fuse: all groups' ranks concatenate into one
    offset-adjusted batched select over the combined bitmap
    (:class:`_FusedSelect` - one ``select_many`` per batch instead of one
    Python-level call per group), and the row-store fetch is one gather
    (every group of an engine shares the same value column, so the
    ``(count, m)`` rowid matrix indexes it in one go).  Bit-exact with
    per-group draws - identical ranks, selects, and values, asserted in
    tests - with a per-group fallback for selectors without flat words.
    """

    def __init__(self, samplers: list[GroupSampler], gids: np.ndarray) -> None:
        super().__init__(gids)
        self._samplers = samplers
        self._values = samplers[0]._group._values  # type: ignore[attr-defined]
        self._shared_values = all(
            s._group._values is self._values for s in samplers  # type: ignore[attr-defined]
        )
        self._fused: _FusedSelect | None = None  # resolved on first fused draw

    def _fused_select(self) -> _FusedSelect:
        """The combined select structure, cached per engine across runs.

        Selectors live on the engine's :class:`IndexedGroup` objects and
        never change, so the (word-copying) concatenation is paid once per
        group set, not once per run.  The cache is keyed weakly by the
        first group and stores the selector list alongside the structure,
        so it can only be reused for the identical selectors (entries die
        with their engine; the strong selector refs inside share the
        group's lifetime anyway).
        """
        if self._fused is not None:
            return self._fused
        group0 = self._samplers[0]._group  # type: ignore[attr-defined]
        selectors = [s._group._selector for s in self._samplers]  # type: ignore[attr-defined]
        cached = _FUSED_CACHE.get(group0)
        if cached is not None:
            cached_selectors, fused = cached
            if len(cached_selectors) == len(selectors) and all(
                a is b for a, b in zip(cached_selectors, selectors)
            ):
                self._fused = fused
                return fused
        fused = _FusedSelect(selectors)
        _FUSED_CACHE[group0] = (selectors, fused)
        self._fused = fused
        return fused

    def draw_into(
        self, out: np.ndarray, cols: np.ndarray, gids: np.ndarray, count: int
    ) -> None:
        slots = self.slots(gids)
        fused = self._fused_select() if self._shared_values else None
        if fused is None or not fused.ok:
            for slot, col in zip(slots, cols):
                out[:, col] = self._samplers[int(slot)].draw(count)
            return
        ranks = np.empty((cols.size, count), dtype=np.int64)
        for j, slot in enumerate(slots):
            sampler = self._samplers[int(slot)]
            ranks[j] = sampler._next_ranks(count)  # type: ignore[attr-defined]
        rowids = fused.select(slots, ranks)
        out[:, cols] = self._values[rowids.T]


class _IndexedWithoutReplacement(GroupSampler):
    def __init__(self, group: "IndexedGroup", rng: np.random.Generator) -> None:
        super().__init__(group.size)
        self._group = group
        self._perm = rng.permutation(group.size)

    def _next_ranks(self, count: int) -> np.ndarray:
        end = self._consumed + count
        if end > self._perm.shape[0]:
            raise ValueError(
                f"group {self._group.name!r} exhausted: requested {count} more "
                f"samples after {self._consumed} of {self._perm.shape[0]}"
            )
        ranks = self._perm[self._consumed : end]
        self._consumed = end
        return ranks

    def draw(self, count: int) -> np.ndarray:
        return self._group.fetch_by_rank(self._next_ranks(count))

    @classmethod
    def make_block_kernel(
        cls, samplers: list[GroupSampler], gids: np.ndarray
    ) -> BlockKernel | None:
        return _IndexedBlockKernel(samplers, gids)


class _IndexedWithReplacement(GroupSampler):
    def __init__(self, group: "IndexedGroup", rng: np.random.Generator) -> None:
        super().__init__(group.size)
        self._group = group
        self._rng = rng

    def _next_ranks(self, count: int) -> np.ndarray:
        self._consumed += count
        return self._rng.integers(0, self._group.size, size=count)

    def draw(self, count: int) -> np.ndarray:
        return self._group.fetch_by_rank(self._next_ranks(count))

    @classmethod
    def make_block_kernel(
        cls, samplers: list[GroupSampler], gids: np.ndarray
    ) -> BlockKernel | None:
        return _IndexedBlockKernel(samplers, gids)


class IndexedGroup(Group):
    """A group backed by a bitmap (value bitmap, optionally AND predicate).

    ``fetch_by_rank`` is the NEEDLETAIL retrieval path: rank -> select ->
    rowid -> row-store fetch.
    """

    def __init__(self, name: str, selector, values: np.ndarray) -> None:
        self.name = str(name)
        self._selector = selector  # HierarchicalBitmap or BitVector
        self._values = values
        self._size = int(selector.count())
        if self._size == 0:
            raise ValueError(f"group {name!r} matches no rows")
        self._mean: float | None = None

    @property
    def size(self) -> int:
        return self._size

    @property
    def true_mean(self) -> float:
        if self._mean is None:
            rowids = self._all_rowids()
            self._mean = float(self._values[rowids].mean())
        return self._mean

    def _all_rowids(self) -> np.ndarray:
        bits = self._selector.bits if hasattr(self._selector, "bits") else self._selector
        return bits.set_positions()

    def fetch_by_rank(self, ranks: np.ndarray) -> np.ndarray:
        """Values of the rows at the given ranks within the group's bitmap."""
        rowids = self._selector.select_many(np.asarray(ranks, dtype=np.int64))
        return np.asarray(self._values[rowids], dtype=np.float64)

    def sampler(self, rng: np.random.Generator, without_replacement: bool) -> GroupSampler:
        if without_replacement:
            return _IndexedWithoutReplacement(self, rng)
        return _IndexedWithReplacement(self, rng)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"IndexedGroup({self.name!r}, n={self._size})"


class NeedletailEngine(SamplingEngine):
    """Sampling engine over a table with a bitmap index on the group-by column."""

    def __init__(
        self,
        table: Table,
        group_by: str,
        value_column: str,
        c: float | None = None,
        predicate: BitVector | None = None,
        cost_model: CostModel | None = None,
        fanout: int = 64,
    ) -> None:
        """Args:
            table: the row-store relation.
            group_by: indexed attribute X.
            value_column: aggregated attribute Y (values must lie in [0, c]).
            c: value upper bound; inferred from the column when omitted
                (metadata a real system would know, e.g. delays <= 24h).
            predicate: optional row bitmap (WHERE clause) restricting every
                group (Section 6.3.3).
            cost_model: simulated cost model; defaults to the calibrated
                NEEDLETAIL constant-per-tuple model.
            fanout: hierarchical bitmap fanout.
        """
        BUILD_COUNTS["needletail"] += 1
        values = np.asarray(table.column(value_column), dtype=np.float64)
        if c is None:
            c = float(values.max()) if values.size else 1.0
            c = max(c, 1e-9)
        self.table = table
        self.group_by = group_by
        self.value_column = value_column
        self.index = BitmapIndex(table, group_by, fanout=fanout)
        self.predicate = predicate

        groups: list[Group] = []
        for key in self.index.keys:
            if predicate is None:
                selector = self.index.bitmap_for(key)
            else:
                selector = self.index.restricted_bitvector(key, predicate)
            if selector.count() == 0:
                continue  # no rows satisfy the predicate for this group
            groups.append(IndexedGroup(str(key), selector, values))
        if not groups:
            raise ValueError("no group matches the predicate")
        population = Population(groups=groups, c=float(c), name=table.name)
        super().__init__(
            population,
            cost_model=cost_model if cost_model is not None else NeedletailCostModel(),
            row_bytes=table.row_bytes,
        )

    def index_storage_bytes(self, compressed: bool = True) -> int:
        """Footprint of the group-by bitmap index."""
        return self.index.storage_bytes(compressed=compressed)
