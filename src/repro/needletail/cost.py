"""Calibrated cost models for the runtime experiments (Fig. 4, Table 3).

The paper quotes three hard numbers about its testbed:

* sequential scans run at ~800 MB/s (Section 5.2);
* a single thread performs ~10M hash probes+updates per second, making SCAN
  CPU-bound (Section 5.2);
* NEEDLETAIL retrieves a random tuple matching a condition "in constant
  time" through its hierarchical bitmap indexes (Section 4), and Fig. 3(b)
  shows total runtime is proportional to the number of samples drawn.

:class:`NeedletailCostModel` encodes exactly those three facts.  The default
per-sample costs are calibrated so the simulated runtimes land near the
paper's reported values (IFOCUS ~3.9 s at 1e9 rows; SCAN ~89 s): ~1.5 us of
I/O and ~1.0 us of CPU per retrieved sample.

:class:`BlockCacheCostModel` is the ablation: it prices a random sample as a
4 KB page read unless the page was already touched (expected-unique-page
analysis, :class:`~repro.needletail.storage.PageAccessModel`).  It shows how
the constant-per-tuple claim degrades when every cache miss costs a full
random I/O - see ``benchmarks/bench_ablation_costmodel.py``.
"""

from __future__ import annotations

from repro.engines.base import CostModel
from repro.needletail.storage import DiskParams, PageAccessModel, SimulatedDisk

__all__ = ["NeedletailCostModel", "BlockCacheCostModel"]


class NeedletailCostModel(CostModel):
    """Constant cost per retrieved tuple + linear scan costs."""

    def __init__(
        self,
        io_per_sample: float = 1.5e-6,
        cpu_per_sample: float = 1.0e-6,
        cpu_per_scan_row: float = 1.0e-7,  # 10M hash probes / second
        disk: DiskParams | None = None,
    ) -> None:
        if min(io_per_sample, cpu_per_sample, cpu_per_scan_row) < 0:
            raise ValueError("cost rates must be >= 0")
        self.io_per_sample = io_per_sample
        self.cpu_per_sample = cpu_per_sample
        self.cpu_per_scan_row = cpu_per_scan_row
        self.disk = disk or DiskParams()

    def sample_cost(self, count: int) -> tuple[float, float]:
        return count * self.io_per_sample, count * self.cpu_per_sample

    def block_sample_cost(self, count: int, groups: int) -> tuple[float, float]:
        total = count * groups
        return total * self.io_per_sample, total * self.cpu_per_sample

    def scan_cost(self, rows: int, row_bytes: int) -> tuple[float, float]:
        io = rows * row_bytes / self.disk.sequential_bandwidth
        cpu = rows * self.cpu_per_scan_row
        return io, cpu


class BlockCacheCostModel(CostModel):
    """Stateful page-cache cost model (the pessimistic ablation).

    Each sample lands on a uniformly random page; the first touch of a page
    costs one random page read, later touches are cache hits costing only
    CPU.  Uses the deterministic expected-unique-pages formula, so repeated
    runs price identically.
    """

    def __init__(
        self,
        total_rows: int,
        row_bytes: int = 8,
        cpu_per_sample: float = 1.0e-6,
        cpu_per_scan_row: float = 1.0e-7,
        disk: DiskParams | None = None,
    ) -> None:
        self.params = disk or DiskParams()
        self._pages = PageAccessModel(total_rows, row_bytes, self.params.page_bytes)
        self._disk = SimulatedDisk(self.params)
        self.cpu_per_sample = cpu_per_sample
        self.cpu_per_scan_row = cpu_per_scan_row

    def sample_cost(self, count: int) -> tuple[float, float]:
        new_pages = self._pages.new_unique(count)
        io = self._disk.random_page_reads(new_pages)
        return io, count * self.cpu_per_sample

    def block_sample_cost(self, count: int, groups: int) -> tuple[float, float]:
        # The expected-unique-pages increment telescopes, so one call with
        # the combined sample count prices exactly like ``groups`` calls.
        return self.sample_cost(count * groups)

    def scan_cost(self, rows: int, row_bytes: int) -> tuple[float, float]:
        io = self._disk.sequential_read(rows * row_bytes)
        cpu = rows * self.cpu_per_scan_row
        return io, cpu
