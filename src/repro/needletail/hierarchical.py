"""Hierarchical bitmap: the NEEDLETAIL structure for logarithmic select.

Section 4 of the paper: "even if the bitmap is dense or sparse, the guarantee
of constant time continues to hold because the bitmaps are organized in a
hierarchical manner (hence the time taken is logarithmic in the total number
of records or equivalently the depth of the tree)."

This module implements that structure: a fanout-F tree whose leaves are the
word popcounts of a :class:`~repro.needletail.bitvector.BitVector` and whose
internal nodes are sums of F children.  ``select(r)`` descends from the root,
narrowing to the word containing the r-th set bit in O(F * log_F n) time, and
finishes inside the word.  Unlike the flat cumulative-sum select, the tree
supports point updates in O(log_F n) (tuple inserts in NEEDLETAIL).
"""

from __future__ import annotations

import numpy as np

from repro.needletail.bitvector import BitVector

__all__ = ["HierarchicalBitmap"]

_WORD_BITS = 64


class HierarchicalBitmap:
    """A rank/select index layered over a BitVector."""

    def __init__(self, bits: BitVector, fanout: int = 64) -> None:
        if fanout < 2:
            raise ValueError(f"fanout must be >= 2, got {fanout}")
        self._bits = bits
        self._fanout = int(fanout)
        self._levels: list[np.ndarray] = []
        self._build()

    @classmethod
    def from_bools(cls, bools: np.ndarray, fanout: int = 64) -> "HierarchicalBitmap":
        return cls(BitVector.from_bools(bools), fanout)

    @classmethod
    def from_indices(cls, indices: np.ndarray, length: int, fanout: int = 64) -> "HierarchicalBitmap":
        return cls(BitVector.from_indices(indices, length), fanout)

    def _build(self) -> None:
        level = np.bitwise_count(np.asarray(self._bits.words)).astype(np.int64)
        self._levels = [level]
        f = self._fanout
        while level.shape[0] > 1:
            pad = (-level.shape[0]) % f
            padded = np.concatenate([level, np.zeros(pad, dtype=np.int64)])
            level = padded.reshape(-1, f).sum(axis=1)
            self._levels.append(level)

    # -- basics ---------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._bits)

    @property
    def bits(self) -> BitVector:
        return self._bits

    @property
    def depth(self) -> int:
        """Number of levels in the tree (1 for a single-word bitmap)."""
        return len(self._levels)

    def count(self) -> int:
        if not self._levels or self._levels[-1].shape[0] == 0:
            return 0
        return int(self._levels[-1].sum())

    def get(self, i: int) -> bool:
        return self._bits.get(i)

    def update(self, i: int, value: bool) -> None:
        """Point update: set bit i, repairing tree counts in O(depth)."""
        old = self._bits.get(i)
        if old == value:
            return
        self._bits.set(i, value)
        delta = 1 if value else -1
        node = i // _WORD_BITS
        for level in self._levels:
            level[node] += delta
            node //= self._fanout

    # -- select ------------------------------------------------------------------
    def select(self, r: int) -> int:
        """Position of the r-th (0-based) set bit via tree descent."""
        total = self.count()
        if not 0 <= r < total:
            raise IndexError(f"select rank out of range [0, {total})")
        node = 0
        rank = r
        # Descend from the root level to the word level.
        for depth in range(len(self._levels) - 1, 0, -1):
            level = self._levels[depth - 1]
            first_child = node * self._fanout
            children = level[first_child : first_child + self._fanout]
            cum = np.cumsum(children)
            child = int(np.searchsorted(cum, rank, side="right"))
            if child > 0:
                rank -= int(cum[child - 1])
            node = first_child + child
        # ``node`` is now a word index; finish inside the word.
        word = int(np.asarray(self._bits.words)[node])
        pos = node * _WORD_BITS
        while True:
            if word & 1:
                if rank == 0:
                    return pos
                rank -= 1
            word >>= 1
            pos += 1

    def select_many(self, ranks: np.ndarray) -> np.ndarray:
        """Batched select.

        The per-query tree descent is pure Python; for larger batches the
        flat vectorized select on the underlying BitVector (binary search
        over word popcounts + byte-level select lookup table) is faster, so
        batches above a small threshold delegate to it (identical results -
        asserted in tests).  This is the path the fused ``draw_block``
        sampling kernel drives, one call per group per batch.
        """
        ranks = np.asarray(ranks, dtype=np.int64)
        if ranks.size == 0:
            return np.zeros(0, dtype=np.int64)
        if ranks.size > 32:
            return self._bits.select_many(ranks)
        return np.array([self.select(int(r)) for r in ranks], dtype=np.int64)

    def rank(self, i: int) -> int:
        """Number of set bits strictly before position ``i``."""
        return self._bits.rank(i)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"HierarchicalBitmap(length={len(self)}, count={self.count()}, "
            f"depth={self.depth}, fanout={self._fanout})"
        )
