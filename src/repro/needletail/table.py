"""Row-store table: the relation R(X, Y, ...) the queries run over.

NEEDLETAIL runs in row-store mode for the paper's experiments; this module
provides the in-memory equivalent: named, equal-length columns plus schema
metadata (row width in bytes for I/O accounting).  Tables are the input to
:class:`~repro.needletail.index.BitmapIndex` and
:class:`~repro.needletail.engine.NeedletailEngine`, and the query layer
(:mod:`repro.query`) binds SQL to them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Column", "Table"]


@dataclass
class Column:
    """One table column: a name, a numpy array, and a byte width."""

    name: str
    values: np.ndarray
    byte_width: int

    def __post_init__(self) -> None:
        self.values = np.asarray(self.values)
        if self.values.ndim != 1:
            raise ValueError(f"column {self.name!r} must be 1-D")
        if self.byte_width <= 0:
            raise ValueError(f"column {self.name!r} needs byte_width > 0")


class Table:
    """A named collection of equal-length columns."""

    def __init__(self, name: str, columns: list[Column]) -> None:
        if not columns:
            raise ValueError("a table needs at least one column")
        lengths = {c.values.shape[0] for c in columns}
        if len(lengths) != 1:
            raise ValueError(f"column lengths differ: {sorted(lengths)}")
        names = [c.name for c in columns]
        if len(set(names)) != len(names):
            raise ValueError("column names must be unique")
        self.name = str(name)
        self._columns = {c.name: c for c in columns}
        self.num_rows = int(lengths.pop())

    @classmethod
    def from_dict(cls, name: str, data: dict[str, np.ndarray]) -> "Table":
        """Build a table from a {column: array} mapping.

        Byte widths are inferred from dtypes (8 for float/int64, itemsize
        otherwise; strings count their encoded width).
        """
        cols = []
        for col_name, values in data.items():
            arr = np.asarray(values)
            width = arr.dtype.itemsize if arr.dtype.itemsize > 0 else 8
            cols.append(Column(col_name, arr, int(width)))
        return cls(name, cols)

    @property
    def column_names(self) -> list[str]:
        return list(self._columns.keys())

    @property
    def row_bytes(self) -> int:
        """Width of one row in bytes (sum of column widths) - drives scan I/O."""
        return sum(c.byte_width for c in self._columns.values())

    @property
    def total_bytes(self) -> int:
        return self.row_bytes * self.num_rows

    def __contains__(self, column: str) -> bool:
        return column in self._columns

    def __len__(self) -> int:
        return self.num_rows

    def column(self, name: str) -> np.ndarray:
        if name not in self._columns:
            raise KeyError(f"table {self.name!r} has no column {name!r}; has {self.column_names}")
        return self._columns[name].values

    def distinct(self, column: str) -> np.ndarray:
        """Sorted distinct values of a column."""
        return np.unique(self.column(column))

    def filter(self, mask: np.ndarray) -> "Table":
        """A new table containing only rows where ``mask`` is True."""
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != (self.num_rows,):
            raise ValueError(f"mask must have shape ({self.num_rows},)")
        cols = [Column(c.name, c.values[mask], c.byte_width) for c in self._columns.values()]
        return Table(self.name, cols)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Table({self.name!r}, rows={self.num_rows}, cols={self.column_names})"
