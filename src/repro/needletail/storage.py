"""Simulated disk subsystem for runtime experiments.

The paper's wall-clock numbers (Fig. 4, Table 3) come from a physical testbed
(64-core Xeon, Direct I/O, ~800 MB/s sequential reads).  We replace the
hardware with a deterministic cost simulator so the runtime experiments are
reproducible anywhere; DESIGN.md section 4 records the substitution and the
calibration.

Two layers:

* :class:`DiskParams` / :class:`SimulatedDisk` - a disk with a sequential
  bandwidth, a per-random-read latency, and an optional page cache; every
  read advances a simulated I/O clock.
* :class:`PageAccessModel` - the expected-unique-pages analysis used by the
  block-cache cost model: after s uniform random samples over a table of P
  pages, the expected number of distinct pages read is P*(1-(1-1/P)^s).
  Using the expectation keeps simulated runtimes deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["DiskParams", "SimulatedDisk", "PageAccessModel"]


@dataclass(frozen=True)
class DiskParams:
    """Physical parameters of the simulated disk.

    Defaults follow the paper's testbed where quoted: 800 MB/s sequential
    bandwidth and 1 MB read blocks (Section 5.1).  ``random_read_seconds`` is
    the full cost of one random page read (seek + transfer).
    """

    sequential_bandwidth: float = 800e6  # bytes / second
    block_bytes: int = 1 << 20  # 1 MB scan blocks
    page_bytes: int = 4096  # random-read granularity
    random_read_seconds: float = 1e-4  # one uncached random page read

    def __post_init__(self) -> None:
        if self.sequential_bandwidth <= 0:
            raise ValueError("sequential_bandwidth must be > 0")
        if self.block_bytes <= 0 or self.page_bytes <= 0:
            raise ValueError("block and page sizes must be > 0")
        if self.random_read_seconds < 0:
            raise ValueError("random_read_seconds must be >= 0")


class SimulatedDisk:
    """A disk that charges simulated seconds for reads.

    Tracks total I/O seconds, bytes moved and read counts.  The page cache is
    modelled by the caller (see :class:`PageAccessModel`) or by passing
    ``cached=True`` for reads known to hit memory.
    """

    def __init__(self, params: DiskParams | None = None) -> None:
        self.params = params or DiskParams()
        self.io_seconds = 0.0
        self.bytes_read = 0
        self.sequential_reads = 0
        self.random_reads = 0

    def sequential_read(self, nbytes: int) -> float:
        """Stream ``nbytes`` sequentially; returns the seconds charged."""
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        cost = nbytes / self.params.sequential_bandwidth
        self.io_seconds += cost
        self.bytes_read += nbytes
        self.sequential_reads += 1
        return cost

    def random_page_reads(self, pages: float) -> float:
        """Read ``pages`` random pages (fractional = expected counts)."""
        if pages < 0:
            raise ValueError("pages must be >= 0")
        cost = pages * self.params.random_read_seconds
        self.io_seconds += cost
        self.bytes_read += int(pages * self.params.page_bytes)
        self.random_reads += int(pages)
        return cost

    def reset(self) -> None:
        self.io_seconds = 0.0
        self.bytes_read = 0
        self.sequential_reads = 0
        self.random_reads = 0


class PageAccessModel:
    """Expected distinct pages touched by uniform random row reads.

    Incremental: ``new_unique(extra_samples)`` returns the expected number of
    *previously untouched* pages hit by the next ``extra_samples`` uniform
    row samples, so a cost model can charge only cache misses.
    """

    def __init__(self, total_rows: int, row_bytes: int, page_bytes: int) -> None:
        if total_rows <= 0 or row_bytes <= 0 or page_bytes <= 0:
            raise ValueError("total_rows, row_bytes and page_bytes must be > 0")
        rows_per_page = max(page_bytes // row_bytes, 1)
        self.total_pages = max((total_rows + rows_per_page - 1) // rows_per_page, 1)
        self._samples = 0

    def expected_unique(self, samples: int) -> float:
        """E[# distinct pages] after ``samples`` uniform page hits."""
        p = self.total_pages
        if samples <= 0:
            return 0.0
        return p * (1.0 - (1.0 - 1.0 / p) ** samples)

    def new_unique(self, extra_samples: int) -> float:
        """Expected newly-touched pages for the next ``extra_samples`` reads."""
        if extra_samples < 0:
            raise ValueError("extra_samples must be >= 0")
        before = self.expected_unique(self._samples)
        self._samples += extra_samples
        after = self.expected_unique(self._samples)
        return after - before
