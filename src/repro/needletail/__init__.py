"""NEEDLETAIL substrate: bitmap indexes, row store, simulated disk, engine."""

from repro.needletail.bitvector import BitVector
from repro.needletail.cost import BlockCacheCostModel, NeedletailCostModel
from repro.needletail.engine import IndexedGroup, NeedletailEngine
from repro.needletail.hierarchical import HierarchicalBitmap
from repro.needletail.index import BitmapIndex
from repro.needletail.rle import RunLengthBitmap
from repro.needletail.storage import DiskParams, PageAccessModel, SimulatedDisk
from repro.needletail.table import Column, Table

__all__ = [
    "BitVector",
    "BlockCacheCostModel",
    "NeedletailCostModel",
    "IndexedGroup",
    "NeedletailEngine",
    "HierarchicalBitmap",
    "BitmapIndex",
    "RunLengthBitmap",
    "DiskParams",
    "PageAccessModel",
    "SimulatedDisk",
    "Column",
    "Table",
]
