"""Shared small utilities: RNG stream management and argument validation.

The algorithms in :mod:`repro.core` are batched/vectorized but must remain
bit-for-bit equivalent to the paper's sample-at-a-time loops.  We get this by
giving every group its *own* independent random stream (spawned from one seed
sequence), so that the order in which groups are sampled never changes the
values any single group observes.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "spawn_group_rngs",
    "as_rng",
    "check_probability",
    "check_positive",
    "check_nonnegative",
]


def as_rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Return a numpy Generator from a seed, an existing Generator, or None."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_group_rngs(seed: int | np.random.Generator | None, k: int) -> list[np.random.Generator]:
    """Create ``k`` independent random streams, one per group.

    Streams are spawned from a single root so the whole experiment is
    reproducible from one integer seed, yet each group's draw sequence is
    independent of how draws to other groups are interleaved.
    """
    if k < 0:
        raise ValueError(f"k must be >= 0, got {k}")
    root = as_rng(seed)
    seeds = root.bit_generator.seed_seq.spawn(k)  # type: ignore[union-attr]
    return [np.random.Generator(np.random.PCG64(s)) for s in seeds]


def check_probability(value: float, name: str) -> float:
    """Validate that ``value`` is a probability in the open interval (0, 1)."""
    value = float(value)
    if not 0.0 < value < 1.0:
        raise ValueError(f"{name} must be in (0, 1), got {value}")
    return value


def check_positive(value: float, name: str) -> float:
    """Validate that ``value`` is strictly positive."""
    value = float(value)
    if not value > 0.0:
        raise ValueError(f"{name} must be > 0, got {value}")
    return value


def check_nonnegative(value: float, name: str) -> float:
    """Validate that ``value`` is >= 0."""
    value = float(value)
    if value < 0.0:
        raise ValueError(f"{name} must be >= 0, got {value}")
    return value
