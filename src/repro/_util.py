"""Shared small utilities: RNG stream management and argument validation.

The algorithms in :mod:`repro.core` are batched/vectorized but must remain
bit-for-bit equivalent to the paper's sample-at-a-time loops.  We get this by
giving every group its *own* independent random stream (spawned from one seed
sequence), so that the order in which groups are sampled never changes the
values any single group observes.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "spawn_group_rngs",
    "spawn_group_seed_seqs",
    "rngs_from_seed_seqs",
    "as_rng",
    "check_probability",
    "check_positive",
    "check_nonnegative",
]


def as_rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Return a numpy Generator from a seed, an existing Generator, or None."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_group_seed_seqs(
    seed: int | np.random.Generator | None, k: int
) -> list[np.random.SeedSequence]:
    """Spawn ``k`` independent per-group ``SeedSequence`` children.

    This is the seed half of :func:`spawn_group_rngs`, split out so the
    process-parallel shard executor can ship the (picklable) children to
    worker processes and rebuild *the same* per-group streams in-worker.
    """
    if k < 0:
        raise ValueError(f"k must be >= 0, got {k}")
    root = as_rng(seed)
    return root.bit_generator.seed_seq.spawn(k)  # type: ignore[union-attr]


def rngs_from_seed_seqs(
    seed_seqs: list[np.random.SeedSequence],
) -> list[np.random.Generator]:
    """Per-group Generators from spawned children - THE stream construction.

    Every consumer (plain engines, thread shards in-process, process-shard
    workers rebuilding streams from pickled children) must build generators
    through this one function: the bit-generator choice is the determinism
    contract, and two copies of this expression could silently drift.
    """
    return [np.random.Generator(np.random.PCG64(s)) for s in seed_seqs]


def spawn_group_rngs(seed: int | np.random.Generator | None, k: int) -> list[np.random.Generator]:
    """Create ``k`` independent random streams, one per group.

    Streams are spawned from a single root so the whole experiment is
    reproducible from one integer seed, yet each group's draw sequence is
    independent of how draws to other groups are interleaved.
    """
    return rngs_from_seed_seqs(spawn_group_seed_seqs(seed, k))


def check_probability(value: float, name: str) -> float:
    """Validate that ``value`` is a probability in the open interval (0, 1)."""
    value = float(value)
    if not 0.0 < value < 1.0:
        raise ValueError(f"{name} must be in (0, 1), got {value}")
    return value


def check_positive(value: float, name: str) -> float:
    """Validate that ``value`` is strictly positive."""
    value = float(value)
    if not value > 0.0:
        raise ValueError(f"{name} must be > 0, got {value}")
    return value


def check_nonnegative(value: float, name: str) -> float:
    """Validate that ``value`` is >= 0."""
    value = float(value)
    if value < 0.0:
        raise ValueError(f"{name} must be >= 0, got {value}")
    return value
