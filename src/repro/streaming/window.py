"""Window definitions for continuous queries.

A :class:`WindowSpec` carves an unbounded chunk stream into half-open
windows ``[start, start + size)`` and is the only piece of the streaming
package that the one-shot layers (``QuerySpec``, the wire format) need to
know about, so this module stays dependency-light: numpy only, no session
or planner imports.

Two domains:

* **Row-count windows** (``on=None``): ``size`` / ``every`` count rows in
  arrival order.  Window *i* covers global row indices
  ``[i * every, i * every + size)``.  Row numbers are assigned by the
  runner as chunks arrive, so row windows close deterministically and can
  never see late data.
* **Time windows** (``on="col"``): ``size`` / ``every`` are measured in
  the units of a numeric column.  The grid is anchored at ``origin`` and
  rows *before* the origin are rejected loudly (a silent negative window
  would otherwise swallow them).  Completeness is tracked by a
  *watermark*: ``max(t seen) - allowed_lateness``.  A window closes once
  the watermark passes its end; rows that arrive for an already-closed
  window are handled per the ``late`` policy (``drop`` / ``recompute`` /
  ``error``).

``every`` defaults to ``size`` (tumbling).  ``every < size`` slides;
``every > size`` would leave gaps that silently drop rows and is
rejected.  When ``size`` is an exact multiple of ``every`` the stream
decomposes into disjoint *panes* of width ``every`` and each window is a
run of ``size/every`` consecutive panes — the property the runner's
warm-start reuse is built on.  The canonical row order of a window is
**pane-major**: panes in grid order, arrival order within each pane.  For
tumbling windows (one pane) that is plain arrival order.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["LATE_POLICIES", "WindowSpec"]

LATE_POLICIES = ("drop", "recompute", "error")

# Tolerance for "size is an exact multiple of every" on float time grids.
_PANE_EPS = 1e-9


@dataclass(frozen=True)
class WindowSpec:
    """How to slice a stream into windows.

    Args:
        size: window width — rows (``on=None``) or time units.
        every: stride between window starts; ``None`` means tumbling
            (``every == size``).  Must satisfy ``0 < every <= size``.
        on: numeric column carrying event time; ``None`` selects
            row-count windows.
        late: what to do with rows whose every window already closed:
            ``"drop"`` (count and discard), ``"recompute"`` (re-append
            and re-emit a revised ``WindowResult``) or ``"error"``
            (raise ``LateDataError``).  Time windows only.
        allowed_lateness: slack subtracted from the max time seen before
            closing windows (the watermark).  Time windows only.
        origin: grid anchor for time windows; rows with ``t < origin``
            are rejected.
    """

    size: float
    every: float | None = None
    on: str | None = None
    late: str = "drop"
    allowed_lateness: float = 0.0
    origin: float = 0.0

    def __post_init__(self) -> None:
        if not isinstance(self.size, (int, float)) or isinstance(self.size, bool):
            raise TypeError(f"window size must be a number, got {self.size!r}")
        if self.size <= 0:
            raise ValueError(f"window size must be > 0, got {self.size!r}")
        if self.every is not None:
            if not isinstance(self.every, (int, float)) or isinstance(self.every, bool):
                raise TypeError(f"window every must be a number, got {self.every!r}")
            if self.every <= 0:
                raise ValueError(f"window every must be > 0, got {self.every!r}")
            if self.every > self.size:
                raise ValueError(
                    f"window every ({self.every!r}) > size ({self.size!r}) would leave "
                    "gaps between windows and silently drop the rows that land there"
                )
        if self.on is not None and not isinstance(self.on, str):
            raise TypeError(f"window on= must be a column name, got {self.on!r}")
        if self.late not in LATE_POLICIES:
            raise ValueError(
                f"unknown late policy {self.late!r}; expected one of {LATE_POLICIES}"
            )
        if self.allowed_lateness < 0:
            raise ValueError(
                f"allowed_lateness must be >= 0, got {self.allowed_lateness!r}"
            )
        if self.on is None:
            for name, value in (("size", self.size), ("every", self.every)):
                if value is not None and float(value) != int(value):
                    raise ValueError(
                        f"row-count windows need integer {name}, got {value!r}"
                    )
            if self.allowed_lateness != 0:
                raise ValueError(
                    "allowed_lateness only applies to time windows (on=...); "
                    "row-count windows are assigned in arrival order and are "
                    "never late"
                )
            if self.late != "drop":
                raise ValueError(
                    f"late={self.late!r} only applies to time windows (on=...); "
                    "row-count windows close deterministically and never see "
                    "late rows"
                )
            if self.origin != 0:
                raise ValueError("origin only applies to time windows (on=...)")

    # -- derived geometry ------------------------------------------------

    @property
    def stride(self) -> float:
        """Distance between consecutive window starts (``every`` or ``size``)."""
        return self.size if self.every is None else self.every

    @property
    def sliding(self) -> bool:
        return self.stride < self.size

    @property
    def by_time(self) -> bool:
        return self.on is not None

    @property
    def panes_per_window(self) -> int | None:
        """Number of ``stride``-wide panes per window, or None if the
        stride does not evenly divide the size (no pane decomposition)."""
        ratio = self.size / self.stride
        n = round(ratio)
        if abs(ratio - n) > _PANE_EPS:
            return None
        return int(n)

    def bounds(self, index: int) -> tuple[float, float]:
        """``[start, end)`` of window ``index`` on the grid."""
        if index < 0:
            raise ValueError(f"window index must be >= 0, got {index}")
        start = self.origin + index * self.stride
        return (start, start + self.size)

    def assign(self, values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Window index range ``[lo, hi]`` (inclusive) for each value.

        ``values`` are event times (time windows) or global row indices
        (row windows).  Each value belongs to windows ``lo..hi``; for
        tumbling windows ``lo == hi``.  Indices are clamped at 0 — the
        grid starts at the origin, so the leading windows of a sliding
        stream see fewer rows than ``size``.
        """
        v = np.asarray(values, dtype=np.float64)
        if v.size and float(v.min()) < self.origin:
            bad = float(v.min())
            raise ValueError(
                f"value {bad!r} in window column precedes the grid origin "
                f"({self.origin!r}); shift origin= or filter the stream"
            )
        rel = v - self.origin
        hi = np.floor(rel / self.stride).astype(np.int64)
        lo = (np.floor((rel - self.size) / self.stride) + 1).astype(np.int64)
        np.maximum(lo, 0, out=lo)
        return lo, hi

    def pane_of(self, values: np.ndarray) -> np.ndarray:
        """Pane index for each value (the pane grid has width ``stride``)."""
        lo, hi = self.assign(values)
        del lo
        return hi

    # -- serialization ---------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "size": self.size,
            "every": self.every,
            "on": self.on,
            "late": self.late,
            "allowed_lateness": self.allowed_lateness,
            "origin": self.origin,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "WindowSpec":
        if not isinstance(payload, dict):
            raise TypeError(f"window payload must be a dict, got {payload!r}")
        known = {"size", "every", "on", "late", "allowed_lateness", "origin"}
        unknown = set(payload) - known
        if unknown:
            raise ValueError(f"unknown window keys: {sorted(unknown)}")
        if "size" not in payload:
            raise ValueError("window payload needs a size")
        return cls(
            size=payload["size"],
            every=payload.get("every"),
            on=payload.get("on"),
            late=payload.get("late", "drop"),
            allowed_lateness=payload.get("allowed_lateness", 0.0),
            origin=payload.get("origin", 0.0),
        )
