"""The window runner: re-running the guarantee machinery per window.

:class:`WindowRunner` consumes chunks from any
:class:`~repro.catalog.source.DataSource` (primarily
:class:`~repro.catalog.source.IteratorSource`), assigns rows to the
windows of a :class:`~repro.streaming.window.WindowSpec`, and evaluates
the query once per window through the *existing* planner - so every
engine, guarantee mode, shard fan-out, deadline and retry knob works
unchanged inside a window.

Lifecycle of one window:

1. **accumulating** - chunks arrive; rows land in the window's panes
   (``stride``-wide disjoint slices of the stream) or, when the stride
   does not divide the size, directly in per-window buffers.
2. **evaluating** - the window's data is complete (watermark passed its
   end, or end of stream): the rows are materialized as a single-table
   catalog and the spec (window stripped) runs through
   :func:`~repro.session.planner.stream_spec`.  Per-group
   :class:`~repro.session.result.PartialUpdate`\\ s surface as
   :class:`WindowUpdate` events while sampling runs.
3. **closed** - a :class:`WindowResult` (the
   :class:`~repro.session.result.Result` plus bounds, watermark and
   lateness accounting) is emitted.

Determinism: window *i* runs with seed ``seed + i`` over its rows in
canonical (pane-major) order, so a closed tumbling window's result is
bit-identical to a one-shot query over exactly those rows with that
seed - the correctness anchor the test suite pins.

Warm start (sliding windows): when a window is a run of panes and the
query is a single-group-by, no-WHERE, population-engine workload, each
pane's grouped value arrays are cached at first use and successor
windows assemble their population by concatenating pane groups instead
of re-sorting the whole overlap.  Because the catalog's cold build is
one *stable* argsort (original row order preserved within groups) and
the canonical window order is pane-major, the assembled population is
bit-identical to a cold build - it is pre-seeded into the per-window
catalog via :meth:`~repro.catalog.Catalog.seed_population` and the
planner never notices the difference.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field, replace
from typing import Iterator

import numpy as np

from repro.catalog import Catalog, TableSource
from repro.data.population import MaterializedGroup, Population
from repro.errors import QueryCancelled, ReproError
from repro.resilience.deadline import Deadline
from repro.session.planner import execute_spec, stream_spec
from repro.session.result import PartialUpdate, Result
from repro.session.spec import QuerySpec
from repro.streaming.window import WindowSpec

__all__ = [
    "LateDataError",
    "WindowBounds",
    "WindowUpdate",
    "WindowResult",
    "WindowRunner",
]


class LateDataError(ReproError):
    """A row arrived for an already-closed window under ``late="error"``."""


@dataclass(frozen=True)
class WindowBounds:
    """One window's position on the grid: ``[start, end)`` at ``index``."""

    index: int
    start: float
    end: float

    def to_dict(self) -> dict:
        return {"index": self.index, "start": self.start, "end": self.end}


@dataclass(frozen=True)
class WindowUpdate:
    """A per-group :class:`PartialUpdate` tagged with its window."""

    window: WindowBounds
    update: PartialUpdate

    def to_dict(self) -> dict:
        return {"window": self.window.to_dict(), "update": self.update.to_dict()}


@dataclass(frozen=True)
class WindowResult:
    """A closed window: its :class:`Result` plus streaming accounting.

    Attributes:
        window: grid position of the window.
        result: the unified query result, or ``None`` for an empty window
            (no rows landed in ``[start, end)`` before it closed).
        rows: number of rows the window was evaluated over.
        seed: the per-window seed (``query seed + window index``); replaying
            a one-shot query over the same rows with this seed reproduces
            ``result`` bit-for-bit.
        watermark: completeness marker at close time - ``max(t) -
            allowed_lateness`` for time windows, rows seen for row windows.
        late_rows: late rows incorporated into this emission (only non-zero
            on ``late="recompute"`` revisions).
        revision: 0 for the first emission; incremented each time a late
            chunk triggers a recompute of this window.
        closed_by: ``"watermark"`` (time), ``"row_count"`` (row windows),
            ``"end_of_stream"`` (finite source exhausted) or
            ``"late_recompute"`` (revised emission).
        warm_start: True when the population was assembled from cached
            panes of overlapping predecessor windows (bit-identical to a
            cold build by construction).
        elapsed_seconds: wall-clock spent evaluating the window.
    """

    window: WindowBounds
    result: Result | None
    rows: int
    seed: int | None
    watermark: float | None
    late_rows: int = 0
    revision: int = 0
    closed_by: str = "watermark"
    warm_start: bool = False
    elapsed_seconds: float = 0.0

    @property
    def empty(self) -> bool:
        return self.result is None

    def to_dict(self) -> dict:
        return {
            "window": self.window.to_dict(),
            "result": self.result.to_dict() if self.result is not None else None,
            "rows": self.rows,
            "seed": self.seed,
            "watermark": self.watermark,
            "late_rows": self.late_rows,
            "revision": self.revision,
            "closed_by": self.closed_by,
            "warm_start": self.warm_start,
            "elapsed_seconds": self.elapsed_seconds,
        }


@dataclass
class _Pane:
    """One stride-wide slice of the stream, buffered column-wise."""

    cols: dict[str, list[np.ndarray]] = field(default_factory=dict)
    rows: int = 0
    # value_col -> (raw-key -> float64 values in arrival order, pane max)
    grouped: dict[str, tuple[dict, float]] = field(default_factory=dict)

    def append(self, chunk: dict, mask: np.ndarray, columns: tuple[str, ...]) -> int:
        n = int(mask.sum())
        if n == 0:
            return 0
        for col in columns:
            self.cols.setdefault(col, []).append(np.asarray(chunk[col])[mask])
        self.rows += n
        self.grouped.clear()  # new rows invalidate the grouped cache
        return n

    def concat(self, col: str) -> np.ndarray:
        parts = self.cols[col]
        return parts[0] if len(parts) == 1 else np.concatenate(parts)


class WindowRunner:
    """Evaluate a windowed :class:`QuerySpec` over a catalog source.

    Args:
        spec: a spec with ``spec.window`` set.  Everything except the
            window is evaluated per window through the normal planner.
        catalog: the catalog holding ``spec.table`` (a snapshot is fine;
            the runner scans the source exactly once).
        seed: base RNG seed; window *i* samples with ``seed + i``.
        warm_start: allow sliding windows to reuse cached pane groupings
            from overlapping predecessors (bit-identical; see module doc).
        max_windows: stop after emitting this many closed windows
            (revisions not counted) - the natural bound for demos over
            unbounded sources.
        emit_updates: emit per-group :class:`WindowUpdate` events while a
            window evaluates; False skips them (results only).
        runner_kwargs: forwarded to the planner (``trace_every``, ...).
        checkpoint: best-effort durability sink - called with a small state
            dict (``emissions``, watermark, counters) at every emission, so
            a restarted run can resume where this one stopped.  Exceptions
            from the sink are swallowed: checkpointing must never fail the
            stream.
        resume_emissions: resume support - suppress the first N emission
            events (they were already delivered by a previous process).
            The source is replayed from the start and every piece of
            bookkeeping still runs (watermarks, late counters, pane
            release, ``max_windows`` math), but suppressed windows skip
            planner evaluation and are not yielded, so the remaining
            emissions come out bit-identical to an uninterrupted run
            (per-window seed stays ``seed + index``).
    """

    def __init__(
        self,
        spec: QuerySpec,
        catalog: Catalog,
        *,
        seed: int | None = None,
        warm_start: bool = True,
        max_windows: int | None = None,
        emit_updates: bool = True,
        runner_kwargs: dict | None = None,
        checkpoint=None,
        resume_emissions: int = 0,
    ) -> None:
        if spec.window is None:
            raise ValueError(
                "spec has no window; WindowRunner needs a windowed spec "
                "(QueryBuilder.window(...) or QuerySpec(window=...))"
            )
        if max_windows is not None and int(max_windows) < 1:
            raise ValueError(f"max_windows must be >= 1, got {max_windows}")
        if int(resume_emissions) < 0:
            raise ValueError(
                f"resume_emissions must be >= 0, got {resume_emissions}"
            )
        self._checkpoint = checkpoint
        self._skip = int(resume_emissions)
        self._emissions = 0
        self._spec = spec
        self._window: WindowSpec = spec.window
        self._inner = replace(spec, window=None)
        self._catalog = catalog
        self._seed = seed
        self._max_windows = max_windows
        self._emit_updates = emit_updates
        self._runner_kwargs = dict(runner_kwargs or {})

        if spec.table not in catalog:
            raise KeyError(
                f"unknown table {spec.table!r}; catalog has {sorted(catalog.names)}"
            )
        schema = catalog.schema(spec.table)
        w = self._window
        cols = list(spec.scan_columns())
        if w.by_time:
            if w.on not in schema:
                raise KeyError(
                    f"window column {w.on!r} is not in table {spec.table!r}"
                )
            if not schema.is_numeric(w.on):
                raise ValueError(
                    f"window column {w.on!r} must be numeric (event time)"
                )
            if w.on not in cols:
                cols.append(w.on)
        self._columns: tuple[str, ...] = tuple(cols)

        # Pane decomposition: possible iff the stride divides the size.
        self._panes_per_window = w.panes_per_window
        self._panes: dict[int, _Pane] = {}
        self._buffers: dict[int, _Pane] = {}  # direct mode: one _Pane per window

        self._warm = bool(
            warm_start
            and w.sliding
            and self._panes_per_window is not None
            and len(spec.group_by) == 1
            and spec.where is None
            and spec.engine == "memory"
            and all(
                a.func in ("AVG", "SUM") and a.column != "*"
                for a in spec.aggregates
            )
        )
        self._value_cols = tuple(
            dict.fromkeys(a.column for a in spec.aggregates if a.column != "*")
        )

        self._started = False
        self._closed_below = 0  # first window index not yet closed
        self._rows_seen = 0
        self._watermark: float | None = None
        self._windows_emitted = 0
        self._revisions = 0
        self._late_dropped = 0
        self._late_recomputed = 0
        self._done = False
        self._cancelled = threading.Event()
        self._active_deadline: Deadline | None = None
        # closed-window accounting, kept only under late="recompute"
        self._closed_info: dict[int, dict] = {}

    # -- public surface ---------------------------------------------------

    def cancel(self) -> None:
        """Stop the run: takes effect at the next chunk/window boundary and
        interrupts the in-flight window's sampling via its deadline token."""
        self._cancelled.set()
        deadline = self._active_deadline
        if deadline is not None:
            deadline.cancel()

    def stats(self) -> dict:
        """Live accounting: rows/windows/late counters for /stats surfaces."""
        return {
            "rows_seen": self._rows_seen,
            "windows_emitted": self._windows_emitted,
            "revisions": self._revisions,
            "late_dropped": self._late_dropped,
            "late_recomputed": self._late_recomputed,
            "watermark": self._watermark,
            "emissions": self._emissions,
        }

    def run(self) -> Iterator[WindowUpdate | WindowResult]:
        """Consume the source once, yielding window events in close order.

        Raises :class:`~repro.errors.QueryCancelled` after :meth:`cancel`
        and :class:`LateDataError` under ``late="error"``.
        """
        w = self._window
        source = self._catalog.source(self._spec.table)
        for chunk in source.scan(columns=self._columns):
            self._check_cancel()
            first = chunk[self._columns[0]]
            if len(first) == 0:
                continue
            if w.by_time:
                yield from self._ingest_time(chunk)
            else:
                yield from self._ingest_rows(chunk)
            if self._done:
                return
        yield from self._flush()

    # -- ingestion --------------------------------------------------------

    def _check_cancel(self) -> None:
        if self._cancelled.is_set():
            raise QueryCancelled("continuous query cancelled")

    def _ingest_time(self, chunk: dict) -> Iterator[WindowUpdate | WindowResult]:
        w = self._window
        values = np.asarray(chunk[w.on], dtype=np.float64)
        lo, hi = w.assign(values)
        if not self._started:
            # Anchor emission at the first window that can hold data: the
            # grid is unchanged, but leading empty windows are not emitted.
            self._started = True
            self._closed_below = int(lo.min())
        late_windows = self._handle_late(chunk, lo, hi)
        on_time = hi >= self._closed_below
        self._append(chunk, lo, hi, on_time)
        self._rows_seen += int(on_time.sum())
        wm = float(values.max()) - w.allowed_lateness
        if self._watermark is None or wm > self._watermark:
            self._watermark = wm
        for idx in late_windows:  # recompute policy: re-emit revised windows
            yield from self._close_window(idx, closed_by="late_recompute")
            if self._done:
                return
        while True:
            _, end = w.bounds(self._closed_below)
            if self._watermark is None or end > self._watermark:
                break
            yield from self._close_window(self._closed_below, closed_by="watermark")
            self._closed_below += 1
            self._release_panes()
            if self._done:
                return

    def _ingest_rows(self, chunk: dict) -> Iterator[WindowUpdate | WindowResult]:
        w = self._window
        n = len(chunk[self._columns[0]])
        values = np.arange(self._rows_seen, self._rows_seen + n, dtype=np.float64)
        lo, hi = w.assign(values)
        self._started = True
        self._append(chunk, lo, hi, np.ones(n, dtype=bool))
        self._rows_seen += n
        self._watermark = float(self._rows_seen)
        while True:
            _, end = w.bounds(self._closed_below)
            if end > self._rows_seen:
                break
            yield from self._close_window(self._closed_below, closed_by="row_count")
            self._closed_below += 1
            self._release_panes()
            if self._done:
                return

    def _handle_late(
        self, chunk: dict, lo: np.ndarray, hi: np.ndarray
    ) -> list[int]:
        """Apply the late policy; returns closed windows to re-emit."""
        w = self._window
        cb = self._closed_below
        touches_closed = lo < cb
        if not touches_closed.any():
            return []
        fully_late = hi < cb
        if w.late == "error":
            t = float(np.asarray(chunk[w.on], dtype=np.float64)[touches_closed][0])
            raise LateDataError(
                f"row with {w.on}={t:g} targets a window that closed at "
                f"watermark {self._watermark:g} (late=\"error\"); widen "
                "allowed_lateness or switch to late=\"drop\"/\"recompute\""
            )
        if w.late == "drop":
            # Fully-late rows vanish (counted); rows that still have an open
            # window keep flowing into it via the normal append.
            self._late_dropped += int(fully_late.sum())
            return []
        # recompute: late rows are appended to their (closed) windows too and
        # each touched closed window is re-emitted as a revision.
        touched: set[int] = set()
        for i in np.nonzero(touches_closed)[0]:
            for idx in range(int(lo[i]), min(int(hi[i]) + 1, cb)):
                if idx in self._closed_info:
                    touched.add(idx)
                    self._closed_info[idx]["late_rows"] += 1
        self._late_recomputed += int(touches_closed.sum())
        return sorted(touched)

    def _append(
        self, chunk: dict, lo: np.ndarray, hi: np.ndarray, keep: np.ndarray
    ) -> None:
        """Buffer chunk rows - by pane when the grid decomposes, else per
        window.  Under late="recompute" closed windows keep their buffers
        and late rows flow back into them (keep masks only fully-dropped
        rows)."""
        recompute = self._window.late == "recompute"
        if self._panes_per_window is not None:
            live = keep if not recompute else np.ones(len(hi), dtype=bool)
            for pane_idx in np.unique(hi[live]):
                mask = live & (hi == pane_idx)
                pane = self._panes.setdefault(int(pane_idx), _Pane())
                pane.append(chunk, mask, self._columns)
            return
        lo_eff = lo if recompute else np.maximum(lo, self._closed_below)
        live = hi >= lo_eff
        if not recompute:
            live &= keep
        if not live.any():
            return
        span_lo = int(lo_eff[live].min())
        span_hi = int(hi[live].max())
        for idx in range(span_lo, span_hi + 1):
            mask = live & (lo_eff <= idx) & (idx <= hi)
            if mask.any():
                buf = self._buffers.setdefault(idx, _Pane())
                buf.append(chunk, mask, self._columns)

    def _release_panes(self) -> None:
        """Free buffers no window will read again (late != recompute)."""
        if self._window.late == "recompute":
            return
        cb = self._closed_below
        if self._panes_per_window is not None:
            for idx in [p for p in self._panes if p < cb]:
                del self._panes[idx]
        else:
            for idx in [i for i in self._buffers if i < cb]:
                del self._buffers[idx]

    def _flush(self) -> Iterator[WindowUpdate | WindowResult]:
        """End of stream: a finite scan means the data is complete, so every
        window up to the last one holding rows closes now."""
        if not self._started:
            return
        store = self._panes if self._panes_per_window is not None else self._buffers
        with_rows = [i for i, b in store.items() if b.rows]
        if not with_rows:
            return
        last = max(with_rows)
        for idx in range(self._closed_below, last + 1):
            self._check_cancel()
            yield from self._close_window(idx, closed_by="end_of_stream")
            self._closed_below = idx + 1
            self._release_panes()
            if self._done:
                return

    # -- evaluation -------------------------------------------------------

    def _window_rows(self, idx: int) -> dict[str, np.ndarray] | None:
        """The window's columns in canonical (pane-major) order."""
        if self._panes_per_window is not None:
            panes = [
                self._panes[p]
                for p in range(idx, idx + self._panes_per_window)
                if p in self._panes and self._panes[p].rows
            ]
            if not panes:
                return None
            return {
                col: np.concatenate([p.concat(col) for p in panes])
                if len(panes) > 1
                else panes[0].concat(col)
                for col in self._columns
            }
        buf = self._buffers.get(idx)
        if buf is None or not buf.rows:
            return None
        return {col: buf.concat(col) for col in self._columns}

    def _pane_grouped(self, pane: _Pane, group_col: str, value_col: str):
        cached = pane.grouped.get(value_col)
        if cached is not None:
            return cached
        groups = pane.concat(group_col)
        values = np.asarray(pane.concat(value_col), dtype=np.float64)
        order = np.argsort(groups, kind="stable")
        keys, starts = np.unique(groups[order], return_index=True)
        by_key = dict(zip(keys, np.split(values[order], starts[1:])))
        entry = (by_key, float(values.max()))
        pane.grouped[value_col] = entry
        return entry

    def _warm_population(self, idx: int, group_col: str, value_col: str):
        """Assemble the window's population from cached pane groupings.

        Bit-identical to :func:`~repro.catalog.catalog.population_from_chunks`
        over the window's canonical rows: the cold build's stable argsort
        keeps arrival order within each group, which is exactly pane-major
        concatenation of the per-pane (stable-sorted) group chunks.
        """
        merged: dict = {}
        maxes: list[float] = []
        for p in range(idx, idx + self._panes_per_window):
            pane = self._panes.get(p)
            if pane is None or not pane.rows:
                continue
            by_key, pane_max = self._pane_grouped(pane, group_col, value_col)
            maxes.append(pane_max)
            for key, arr in by_key.items():
                merged.setdefault(key, []).append(arr)
        if not merged:
            return None
        if self._spec.value_bound is not None:
            c = float(self._spec.value_bound)
        else:
            c = max(max(maxes), 1e-9)
        groups = [
            MaterializedGroup(
                str(key),
                merged[key][0]
                if len(merged[key]) == 1
                else np.concatenate(merged[key]),
            )
            for key in sorted(merged)
        ]
        return Population(groups=groups, c=c, name=self._spec.table)

    def _close_window(
        self, idx: int, *, closed_by: str
    ) -> Iterator[WindowUpdate | WindowResult]:
        self._check_cancel()
        w = self._window
        start, end = w.bounds(idx)
        bounds = WindowBounds(index=idx, start=start, end=end)
        info = self._closed_info.get(idx)
        revision = 0
        late_rows = 0
        if info is not None:
            info["revision"] += 1
            revision = info["revision"]
            late_rows = info["late_rows"]
            self._revisions += 1
        elif w.late == "recompute":
            self._closed_info[idx] = {"revision": 0, "late_rows": 0}

        if self._skip > 0:
            # Resuming from a checkpoint: this emission was already
            # delivered by a previous process.  Count it (so max_windows
            # and the next checkpoint line up) but skip evaluation and the
            # yield entirely.
            self._skip -= 1
            self._count_emission(revision)
            return

        began = time.perf_counter()
        rows = self._window_rows(idx)
        if rows is None:
            yield self._emit(
                WindowResult(
                    window=bounds,
                    result=None,
                    rows=0,
                    seed=self._window_seed(idx),
                    watermark=self._watermark,
                    late_rows=late_rows,
                    revision=revision,
                    closed_by=closed_by,
                    elapsed_seconds=time.perf_counter() - began,
                ),
                revision,
            )
            return

        n_rows = int(len(rows[self._columns[0]]))
        catalog = Catalog()
        catalog.register(self._spec.table, TableSource(rows, name=self._spec.table))
        warm = False
        if self._warm:
            group_col = self._spec.group_by[0]
            for value_col in self._value_cols:
                population = self._warm_population(idx, group_col, value_col)
                if population is None:
                    continue
                catalog.seed_population(
                    self._spec.table,
                    group_col,
                    value_col,
                    population,
                    predicate=None,
                    value_bound=self._spec.value_bound,
                )
                warm = True

        seed = self._window_seed(idx)
        deadline = (
            Deadline.after_ms(self._spec.deadline_ms)
            if self._spec.deadline_ms is not None
            else Deadline()
        )
        self._active_deadline = deadline
        try:
            if self._emit_updates:
                # Same code path as Session.stream: live per-group updates,
                # then the assembled result.
                stream = stream_spec(
                    self._inner,
                    catalog,
                    seed=seed,
                    runner_kwargs=self._runner_kwargs,
                    deadline=deadline,
                )
                for update in stream:
                    yield WindowUpdate(window=bounds, update=update)
                result = stream.result
            else:
                # Same code path as Session.execute - the bit-identity
                # anchor the tumbling-window tests pin.
                result = execute_spec(
                    self._inner,
                    catalog,
                    seed=seed,
                    runner_kwargs=self._runner_kwargs,
                    deadline=deadline,
                )
        finally:
            self._active_deadline = None
        self._check_cancel()
        yield self._emit(
            WindowResult(
                window=bounds,
                result=result,
                rows=n_rows,
                seed=seed,
                watermark=self._watermark,
                late_rows=late_rows,
                revision=revision,
                closed_by=closed_by,
                warm_start=warm,
                elapsed_seconds=time.perf_counter() - began,
            ),
            revision,
        )

    def _emit(self, result: WindowResult, revision: int) -> WindowResult:
        self._count_emission(revision)
        self._write_checkpoint()
        return result

    def _count_emission(self, revision: int) -> None:
        self._emissions += 1
        if revision == 0:
            self._windows_emitted += 1
            if (
                self._max_windows is not None
                and self._windows_emitted >= self._max_windows
            ):
                self._done = True

    def _write_checkpoint(self) -> None:
        if self._checkpoint is None:
            return
        try:
            self._checkpoint(
                {
                    "emissions": self._emissions,
                    "closed_below": self._closed_below,
                    "rows_seen": self._rows_seen,
                    "watermark": self._watermark,
                    "windows_emitted": self._windows_emitted,
                    "revisions": self._revisions,
                    "late_dropped": self._late_dropped,
                    "late_recomputed": self._late_recomputed,
                }
            )
        except Exception:
            # Checkpointing is a durability aid, never a correctness
            # dependency: a failing sink must not kill a healthy stream.
            pass

    def _window_seed(self, idx: int) -> int | None:
        return None if self._seed is None else int(self._seed) + idx
