"""Continuous windowed queries with per-window ordering guarantees.

The streaming layer carves an unbounded chunk stream into windows
(:mod:`repro.streaming.window`), re-runs the full guarantee machinery per
window (:mod:`repro.streaming.runner`) and hands consumers a live
subscription handle (:mod:`repro.streaming.continuous`).  Front doors:
``QueryBuilder.window(...)`` + ``Session.subscribe(...)``, the
``GET /subscribe`` SSE endpoint in :mod:`repro.serve`, and
``repro stream`` in the CLI.

Import note: :class:`WindowSpec` is imported eagerly because
:mod:`repro.session.spec` embeds it in the query IR; the runner and the
continuous handle import the planner, so they load lazily (module
``__getattr__``) to keep ``repro.session`` <-> ``repro.streaming``
acyclic.
"""

from repro.streaming.window import LATE_POLICIES, WindowSpec

__all__ = [
    "LATE_POLICIES",
    "WindowSpec",
    "WindowBounds",
    "WindowUpdate",
    "WindowResult",
    "WindowRunner",
    "ContinuousQuery",
    "LateDataError",
]

_LAZY = {
    "WindowBounds": "repro.streaming.runner",
    "WindowUpdate": "repro.streaming.runner",
    "WindowResult": "repro.streaming.runner",
    "WindowRunner": "repro.streaming.runner",
    "LateDataError": "repro.streaming.runner",
    "ContinuousQuery": "repro.streaming.continuous",
}


def __getattr__(name: str):
    module = _LAZY.get(name)
    if module is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module), name)


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_LAZY))
