"""The live handle a subscription returns: a query that keeps answering.

:class:`ContinuousQuery` runs a :class:`~repro.streaming.runner.WindowRunner`
on a daemon thread and hands the caller an iterator of window events -
the same producer-thread + queue shape :func:`~repro.session.planner`
uses for live one-shot streams, so a consumer can fall behind (events
buffer) or walk away (``cancel()`` stops the producer at its next
boundary and interrupts in-flight sampling through the active window's
deadline token).

Cancellation is cooperative and clean: after :meth:`cancel` the event
iterator simply ends (no exception - the consumer asked for it); any
*other* failure inside the runner re-raises from :meth:`updates` so
errors are never swallowed.
"""

from __future__ import annotations

import queue
import threading
from typing import Iterator

from repro.catalog import Catalog
from repro.errors import QueryCancelled
from repro.session.spec import QuerySpec
from repro.streaming.runner import WindowResult, WindowRunner, WindowUpdate

__all__ = ["ContinuousQuery"]

_DONE = object()


class ContinuousQuery:
    """A running subscription over a windowed spec.

    Obtained from ``Session.subscribe(...)`` (or :meth:`start`).  Iterate
    :meth:`updates` for the full event stream (``WindowUpdate`` while a
    window evaluates, ``WindowResult`` when it closes) or :meth:`results`
    for closed windows only.  The stream is single-consumer.
    """

    def __init__(self, runner: WindowRunner) -> None:
        self._runner = runner
        self._queue: "queue.Queue[object]" = queue.Queue()
        self._error: BaseException | None = None
        self._was_cancelled = False
        self._finished = threading.Event()
        self._consuming = False
        self._thread = threading.Thread(
            target=self._work, daemon=True, name="continuous-query"
        )
        self._thread.start()

    @classmethod
    def start(
        cls,
        spec: QuerySpec,
        catalog: Catalog,
        *,
        seed: int | None = None,
        warm_start: bool = True,
        max_windows: int | None = None,
        emit_updates: bool = True,
        runner_kwargs: dict | None = None,
        checkpoint=None,
        resume_emissions: int = 0,
    ) -> "ContinuousQuery":
        """Build the runner and start it; see :class:`WindowRunner` for args."""
        return cls(
            WindowRunner(
                spec,
                catalog,
                seed=seed,
                warm_start=warm_start,
                max_windows=max_windows,
                emit_updates=emit_updates,
                runner_kwargs=runner_kwargs,
                checkpoint=checkpoint,
                resume_emissions=resume_emissions,
            )
        )

    # -- producer ---------------------------------------------------------

    def _work(self) -> None:
        try:
            for event in self._runner.run():
                self._queue.put(event)
        except QueryCancelled:
            self._was_cancelled = True
        except BaseException as exc:  # surfaced from updates(), never lost
            self._error = exc
        finally:
            self._finished.set()
            self._queue.put(_DONE)

    # -- consumer surface -------------------------------------------------

    def updates(self) -> Iterator[WindowUpdate | WindowResult]:
        """The event stream; ends on source exhaustion, ``max_windows`` or
        :meth:`cancel`, re-raises any runner failure."""
        if self._consuming:
            raise RuntimeError(
                "ContinuousQuery is single-consumer; updates() already claimed"
            )
        self._consuming = True
        while True:
            item = self._queue.get()
            if item is _DONE:
                if self._error is not None:
                    raise self._error
                return
            yield item

    def results(self) -> Iterator[WindowResult]:
        """Closed windows only (per-group updates filtered out)."""
        for event in self.updates():
            if isinstance(event, WindowResult):
                yield event

    def __iter__(self) -> Iterator[WindowUpdate | WindowResult]:
        return self.updates()

    def cancel(self) -> None:
        """Stop the subscription; idempotent, takes effect at the runner's
        next chunk/window boundary (in-flight sampling is interrupted)."""
        self._runner.cancel()

    def join(self, timeout: float | None = None) -> bool:
        """Wait for the producer to finish; True once it has."""
        return self._finished.wait(timeout)

    @property
    def done(self) -> bool:
        return self._finished.is_set()

    @property
    def cancelled(self) -> bool:
        return self._was_cancelled

    @property
    def error(self) -> BaseException | None:
        """The runner failure delivered (or about to be) by :meth:`updates`."""
        return self._error

    def stats(self) -> dict:
        """Live runner accounting (rows, windows, late counters)."""
        return self._runner.stats()
