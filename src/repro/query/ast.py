"""AST for the paper's query class.

The supported grammar is the paper's visualization query (Section 2.1) plus
the Section 6.3 generalizations:

    SELECT X [, Z], AGG(Y) [, AGG(W)] FROM R
        [WHERE predicate]
        GROUP BY X [, Z]
        [HAVING AGG(Y) op literal]

with AGG in {AVG, SUM, COUNT} and predicates built from comparisons,
BETWEEN, IN, AND/OR/NOT and parentheses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

__all__ = [
    "Comparison",
    "Between",
    "InList",
    "Not",
    "And",
    "Or",
    "Predicate",
    "Aggregate",
    "Query",
    "COMPARISON_OPS",
    "predicate_to_dict",
    "predicate_from_dict",
]

COMPARISON_OPS = ("=", "!=", "<>", "<", "<=", ">", ">=")

Literal = Union[float, int, str]


@dataclass(frozen=True)
class Comparison:
    """column op literal, e.g. ``delay > 30``."""

    column: str
    op: str
    value: Literal

    def __post_init__(self) -> None:
        if self.op not in COMPARISON_OPS:
            raise ValueError(f"unknown comparison operator {self.op!r}")


@dataclass(frozen=True)
class Between:
    """column BETWEEN lo AND hi (inclusive both ends, SQL semantics)."""

    column: str
    lo: Literal
    hi: Literal


@dataclass(frozen=True)
class InList:
    """column IN (v1, v2, ...)."""

    column: str
    values: tuple[Literal, ...]

    def __post_init__(self) -> None:
        if not self.values:
            raise ValueError("IN list must not be empty")


@dataclass(frozen=True)
class Not:
    operand: "Predicate"


@dataclass(frozen=True)
class And:
    operands: tuple["Predicate", ...]

    def __post_init__(self) -> None:
        if len(self.operands) < 2:
            raise ValueError("AND needs at least two operands")


@dataclass(frozen=True)
class Or:
    operands: tuple["Predicate", ...]

    def __post_init__(self) -> None:
        if len(self.operands) < 2:
            raise ValueError("OR needs at least two operands")


Predicate = Union[Comparison, Between, InList, Not, And, Or]


def predicate_to_dict(pred: Predicate) -> dict:
    """A JSON-safe dict form of a predicate tree (the server wire format).

    Every node carries an ``"op"`` discriminator; ``predicate_from_dict``
    round-trips it back to the identical (frozen, hashable) AST value.
    """
    if isinstance(pred, Comparison):
        return {"op": "compare", "column": pred.column, "cmp": pred.op, "value": pred.value}
    if isinstance(pred, Between):
        return {"op": "between", "column": pred.column, "lo": pred.lo, "hi": pred.hi}
    if isinstance(pred, InList):
        return {"op": "in", "column": pred.column, "values": list(pred.values)}
    if isinstance(pred, Not):
        return {"op": "not", "operand": predicate_to_dict(pred.operand)}
    if isinstance(pred, (And, Or)):
        return {
            "op": "and" if isinstance(pred, And) else "or",
            "operands": [predicate_to_dict(p) for p in pred.operands],
        }
    raise TypeError(f"not a predicate: {type(pred).__name__}")


def predicate_from_dict(data: dict) -> Predicate:
    """Rebuild a predicate tree from its :func:`predicate_to_dict` form."""
    op = data.get("op")
    if op == "compare":
        return Comparison(data["column"], data["cmp"], data["value"])
    if op == "between":
        return Between(data["column"], data["lo"], data["hi"])
    if op == "in":
        return InList(data["column"], tuple(data["values"]))
    if op == "not":
        return Not(predicate_from_dict(data["operand"]))
    if op in ("and", "or"):
        operands = tuple(predicate_from_dict(d) for d in data["operands"])
        return And(operands) if op == "and" else Or(operands)
    raise ValueError(f"unknown predicate op {op!r}")


@dataclass(frozen=True)
class Aggregate:
    """AGG(column); COUNT may aggregate '*'."""

    func: str
    column: str

    def __post_init__(self) -> None:
        if self.func not in ("AVG", "SUM", "COUNT"):
            raise ValueError(f"unsupported aggregate {self.func!r}")
        if self.column == "*" and self.func != "COUNT":
            raise ValueError("only COUNT may aggregate '*'")


@dataclass(frozen=True)
class Query:
    """A parsed visualization query."""

    table: str
    group_by: tuple[str, ...]
    aggregates: tuple[Aggregate, ...]
    where: Predicate | None = None
    having: tuple[Aggregate, str, float] | None = None
    select_groups: tuple[str, ...] = field(default=())

    def __post_init__(self) -> None:
        if not self.group_by:
            raise ValueError("the paper's queries require at least one GROUP BY")
        if not self.aggregates:
            raise ValueError("need at least one aggregate in SELECT")
        missing = [g for g in self.select_groups if g not in self.group_by]
        if missing:
            raise ValueError(f"selected non-aggregated columns not in GROUP BY: {missing}")
