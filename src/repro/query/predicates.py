"""Predicate evaluation: AST -> row masks -> bitmap form.

Selection predicates restrict which rows a group sampler may return (paper
Section 6.3.3).  NEEDLETAIL evaluates them as bitmaps: each comparison
becomes a row bitmap, combined with AND/OR/NOT, and the result is ANDed with
every group's value bitmap.  Here the comparison bitmaps are computed from
the in-memory columns (equivalent to having bitmap indexes on the predicate
attributes, which is NEEDLETAIL's design: "for every value of every attribute
in the relation that is indexed").
"""

from __future__ import annotations

from typing import Callable, Mapping

import numpy as np

from repro.needletail.bitvector import BitVector
from repro.needletail.table import Table
from repro.query.ast import And, Between, Comparison, InList, Not, Or, Predicate

__all__ = [
    "predicate_mask",
    "predicate_mask_over",
    "predicate_chunk_mask",
    "predicate_bitvector",
    "predicate_columns",
]

_OP_FUNCS = {
    "=": np.equal,
    "!=": np.not_equal,
    "<>": np.not_equal,
    "<": np.less,
    "<=": np.less_equal,
    ">": np.greater,
    ">=": np.greater_equal,
}


def _coerce(column_values: np.ndarray, literal):
    """Coerce a literal to the column's dtype family for fair comparison.

    bool counts as numeric (``flag = 1`` compares ``True == 1.0``), matching
    the schema layer's classification - previously a bool column stringified
    the literal and crashed inside the ufunc.
    """
    if np.issubdtype(column_values.dtype, np.number) or column_values.dtype == bool:
        if isinstance(literal, str):
            raise TypeError(
                f"cannot compare numeric column to string literal {literal!r}"
            )
        return float(literal)
    return str(literal)


def predicate_mask_over(
    pred: Predicate, column_of: Callable[[str], np.ndarray], num_rows: int
) -> np.ndarray:
    """Evaluate a predicate to a boolean mask over any columnar row batch.

    ``column_of`` resolves a column name to its value array; ``num_rows`` is
    the batch length.  This is the shared kernel behind both the whole-table
    form (:func:`predicate_mask`) and the per-chunk form the lazy
    :mod:`repro.catalog` sources use for predicate pushdown - masking each
    chunk as it streams by is bit-identical to masking the concatenated
    whole, which is what the pushdown parity tests assert.
    """
    if isinstance(pred, Comparison):
        col = column_of(pred.column)
        value = _coerce(col, pred.value)
        return _OP_FUNCS[pred.op](col, value)
    if isinstance(pred, Between):
        col = column_of(pred.column)
        lo = _coerce(col, pred.lo)
        hi = _coerce(col, pred.hi)
        return (col >= lo) & (col <= hi)
    if isinstance(pred, InList):
        col = column_of(pred.column)
        out = np.zeros(num_rows, dtype=bool)
        for v in pred.values:
            out |= col == _coerce(col, v)
        return out
    if isinstance(pred, Not):
        return ~predicate_mask_over(pred.operand, column_of, num_rows)
    if isinstance(pred, And):
        out = np.ones(num_rows, dtype=bool)
        for p in pred.operands:
            out &= predicate_mask_over(p, column_of, num_rows)
        return out
    if isinstance(pred, Or):
        out = np.zeros(num_rows, dtype=bool)
        for p in pred.operands:
            out |= predicate_mask_over(p, column_of, num_rows)
        return out
    raise TypeError(f"unknown predicate node {type(pred).__name__}")


def predicate_mask(pred: Predicate, table: Table) -> np.ndarray:
    """Evaluate a predicate to a boolean row mask over the table."""
    return predicate_mask_over(pred, table.column, table.num_rows)


def predicate_chunk_mask(pred: Predicate, chunk: Mapping[str, np.ndarray]) -> np.ndarray:
    """Evaluate a predicate over one ``{column: array}`` scan chunk."""
    num_rows = len(next(iter(chunk.values()))) if chunk else 0
    return predicate_mask_over(pred, lambda name: chunk[name], num_rows)


def predicate_bitvector(pred: Predicate, table: Table) -> BitVector:
    """Evaluate a predicate to the bitmap form the engine ANDs with groups."""
    return BitVector.from_bools(predicate_mask(pred, table))


def predicate_columns(pred: Predicate) -> set[str]:
    """Column names a predicate touches (for validation and planning)."""
    if isinstance(pred, (Comparison, Between, InList)):
        return {pred.column}
    if isinstance(pred, Not):
        return predicate_columns(pred.operand)
    if isinstance(pred, (And, Or)):
        out: set[str] = set()
        for p in pred.operands:
            out |= predicate_columns(p)
        return out
    raise TypeError(f"unknown predicate node {type(pred).__name__}")
