"""Legacy SQL execution shim: ``execute_query`` over the Session planner.

This used to be its own planner; it is now a deprecated thin wrapper around
:func:`repro.session.planner.execute_spec`, kept so pre-Session callers and
their result shape (:class:`QueryResult`) keep working.  New code should use
the Session API::

    session = repro.connect()
    session.register("flights", table)
    result = session.sql("SELECT carrier, AVG(delay) ... ").run(seed=0)

Both paths lower to the same :class:`~repro.session.spec.QuerySpec` and run
through the same planner, so results are bit-identical - with one documented
exception: for two-AVG queries the legacy planner silently ignored ``c``,
while the shim now forwards it as the value bound of both aggregates (a
caller who declared a bound presumably wanted it applied); ``resolution`` is
still ignored for two-AVG queries, exactly as before.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro._compat import deprecated_entrypoint
from repro.core.types import OrderingResult
from repro.needletail.engine import NeedletailEngine
from repro.needletail.table import Table
from repro.query.ast import Aggregate, Query
from repro.query.parser import parse_query
from repro.session.planner import _prepare_table, execute_spec
from repro.session.spec import GuaranteeSpec, lower_query

__all__ = ["QueryResult", "execute_query"]


@dataclass
class QueryResult:
    """Executed visualization query: labels plus per-aggregate results.

    Pre-Session result shape; :class:`repro.session.result.Result` is the
    unified replacement (same information plus guarantee metadata and
    accounting helpers).
    """

    query: Query
    labels: list[str]
    results: dict[str, OrderingResult]
    engine: NeedletailEngine
    dropped_by_having: list[str] = field(default_factory=list)
    caveats: list[str] = field(default_factory=list)

    def estimates(self, aggregate: str | None = None) -> dict[str, float]:
        """{group label: estimate} for one aggregate (default: the first)."""
        key = aggregate or next(iter(self.results))
        res = self.results[key]
        return {label: float(v) for label, v in zip(self.labels, res.estimates)}

    @property
    def total_samples(self) -> int:
        return max(r.total_samples for r in self.results.values())


def _agg_key(agg: Aggregate) -> str:
    return f"{agg.func}({agg.column})"


def _execute_query(
    sql: str | Query,
    tables: dict[str, Table],
    *,
    algorithm: str = "ifocus",
    delta: float = 0.05,
    resolution: float = 0.0,
    c: float | None = None,
    seed: int | np.random.Generator | None = None,
    **kwargs,
) -> QueryResult:
    """Parse (if needed), plan, and execute a visualization query.

    Args:
        sql: SQL text or an already-parsed :class:`Query`.
        tables: catalog mapping table names to :class:`Table` objects.
        algorithm: which sampling algorithm answers AVG aggregates.
        delta / resolution / c / seed: forwarded guarantees and knobs.

    Returns:
        A :class:`QueryResult` with one :class:`OrderingResult` per
        aggregate, keyed "AVG(delay)"-style.
    """
    query = parse_query(sql) if isinstance(sql, str) else sql
    two_avgs = sum(a.func == "AVG" for a in query.aggregates) == 2
    spec = lower_query(
        query,
        # The legacy planner silently ignored resolution for two-AVG queries
        # (the Session planner rejects it); preserve that here.
        guarantee=GuaranteeSpec(
            delta=delta, resolution=0.0 if two_avgs else resolution
        ),
        algorithm=algorithm,
        value_bound=c,
    )
    result = execute_spec(spec, tables, seed=seed, runner_kwargs=kwargs)
    engine = result.engine
    if engine is None:
        # Pure two-AVG queries: the Session Result carries no engine (the
        # two-phase schedule drives its own index), but legacy callers rely
        # on QueryResult.engine always being populated.
        table, group_col = _prepare_table(spec, tables[spec.table])
        avg_col = next(a.column for a in spec.aggregates if a.func == "AVG")
        engine = NeedletailEngine(table, group_col, avg_col, c=c)
    return QueryResult(
        query=query,
        labels=list(result.labels),
        results={key: agg.raw for key, agg in result.aggregates.items()},
        engine=engine,
        dropped_by_having=list(result.dropped_by_having),
        caveats=list(result.caveats),
    )


execute_query = deprecated_entrypoint(
    _execute_query,
    "execute_query",
    'repro.connect().register(name, table).sql("SELECT ...").run()',
)
