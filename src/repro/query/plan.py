"""Query planning and execution: SQL text -> engine -> sampling algorithm.

This is the front door a downstream user sees: hand it a visualization query
and a catalog of tables, get back ordered (approximate) aggregates with the
1 - delta guarantee.  Dispatch rules:

* ``AVG(Y)`` - the core algorithms (ifocus/ifocusr/irefine/...);
* ``SUM(Y)`` - Algorithm 4 (group sizes are bitmap-index metadata);
* ``COUNT(*)``/``COUNT(Y)`` - exact from index metadata;
* two AVG aggregates - the two-phase Problem 8 schedule;
* multiple GROUP BY columns - the cross-product composite key (§6.3.4);
* WHERE - predicate bitmaps ANDed into every group (§6.3.3);
* HAVING AGG op literal - post-filter on the estimated aggregate (with the
  usual caveat that it filters estimates, not true values).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.registry import run_algorithm
from repro.core.types import OrderingResult
from repro.extensions.multi import composite_group_column, run_ifocus_multi_avg
from repro.extensions.counts import run_count_known
from repro.extensions.sums import run_ifocus_sum
from repro.needletail.engine import NeedletailEngine
from repro.needletail.table import Column, Table
from repro.query.ast import Aggregate, Query
from repro.query.parser import parse_query
from repro.query.predicates import predicate_bitvector, predicate_columns

__all__ = ["QueryResult", "execute_query"]

_COMPARE = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<>": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


@dataclass
class QueryResult:
    """Executed visualization query: labels plus per-aggregate results."""

    query: Query
    labels: list[str]
    results: dict[str, OrderingResult]
    engine: NeedletailEngine
    dropped_by_having: list[str] = field(default_factory=list)

    def estimates(self, aggregate: str | None = None) -> dict[str, float]:
        """{group label: estimate} for one aggregate (default: the first)."""
        key = aggregate or next(iter(self.results))
        res = self.results[key]
        return {label: float(v) for label, v in zip(self.labels, res.estimates)}

    @property
    def total_samples(self) -> int:
        return max(r.total_samples for r in self.results.values())


def _agg_key(agg: Aggregate) -> str:
    return f"{agg.func}({agg.column})"


def _prepare_table(query: Query, table: Table) -> tuple[Table, str]:
    """Resolve (possibly composite) group-by into a single indexed column."""
    for col in query.group_by:
        if col not in table:
            raise KeyError(f"GROUP BY column {col!r} not in table {table.name!r}")
    if len(query.group_by) == 1:
        return table, query.group_by[0]
    key = composite_group_column(table, list(query.group_by))
    augmented = Table(
        table.name,
        [Column(name, table.column(name), 8) for name in table.column_names]
        + [Column("__group_key__", key, 8)],
    )
    return augmented, "__group_key__"


def execute_query(
    sql: str | Query,
    tables: dict[str, Table],
    *,
    algorithm: str = "ifocus",
    delta: float = 0.05,
    resolution: float = 0.0,
    c: float | None = None,
    seed: int | np.random.Generator | None = None,
    **kwargs,
) -> QueryResult:
    """Parse (if needed), plan, and execute a visualization query.

    Args:
        sql: SQL text or an already-parsed :class:`Query`.
        tables: catalog mapping table names to :class:`Table` objects.
        algorithm: which sampling algorithm answers AVG aggregates.
        delta / resolution / c / seed: forwarded guarantees and knobs.

    Returns:
        A :class:`QueryResult` with one :class:`OrderingResult` per
        aggregate, keyed "AVG(delay)"-style.
    """
    query = parse_query(sql) if isinstance(sql, str) else sql
    if query.table not in tables:
        raise KeyError(f"unknown table {query.table!r}; catalog has {sorted(tables)}")
    table = tables[query.table]
    for agg in query.aggregates:
        if agg.column != "*" and agg.column not in table:
            raise KeyError(f"aggregate column {agg.column!r} not in table {query.table!r}")
    if query.where is not None:
        missing = predicate_columns(query.where) - set(table.column_names)
        if missing:
            raise KeyError(f"WHERE references unknown columns: {sorted(missing)}")

    table, group_col = _prepare_table(query, table)
    predicate = predicate_bitvector(query.where, table) if query.where is not None else None

    avgs = [a for a in query.aggregates if a.func == "AVG"]
    results: dict[str, OrderingResult] = {}
    labels: list[str] | None = None
    engine: NeedletailEngine | None = None

    def make_engine(value_column: str) -> NeedletailEngine:
        return NeedletailEngine(
            table, group_col, value_column, c=c, predicate=predicate
        )

    if len(avgs) > 2:
        raise ValueError("at most two AVG aggregates are supported (Problem 8)")
    if len(avgs) == 2:
        if predicate is not None:
            raise ValueError("two-aggregate queries do not support WHERE yet")
        multi = run_ifocus_multi_avg(
            table,
            group_col,
            avgs[0].column,
            avgs[1].column,
            delta=delta,
            seed=seed,
        )
        results[_agg_key(avgs[0])] = multi.y
        results[_agg_key(avgs[1])] = multi.z
        labels = [g.name for g in multi.y.groups]
    elif len(avgs) == 1:
        engine = make_engine(avgs[0].column)
        res = run_algorithm(
            algorithm, engine, delta=delta, resolution=resolution, seed=seed, **kwargs
        )
        results[_agg_key(avgs[0])] = res
        labels = engine.population.group_names

    for agg in query.aggregates:
        if agg.func == "SUM":
            sum_engine = make_engine(agg.column)
            res = run_ifocus_sum(sum_engine, delta=delta, seed=seed)
            results[_agg_key(agg)] = res
            labels = labels or sum_engine.population.group_names
            engine = engine or sum_engine
        elif agg.func == "COUNT":
            count_col = query.group_by[0] if agg.column == "*" else agg.column
            # COUNT needs any engine over the same groups; sizes are metadata.
            count_engine = engine or make_engine(
                avgs[0].column if avgs else _numeric_column(table, count_col)
            )
            results[_agg_key(agg)] = run_count_known(count_engine)
            labels = labels or count_engine.population.group_names
            engine = engine or count_engine

    if labels is None or not results:
        raise ValueError("query produced no executable aggregate")
    if engine is None:
        engine = make_engine(avgs[0].column if avgs else query.aggregates[0].column)

    dropped: list[str] = []
    if query.having is not None:
        agg, op, value = query.having
        key = _agg_key(agg)
        if key not in results:
            raise ValueError(f"HAVING references {key}, which is not in SELECT")
        keep = _COMPARE[op](results[key].estimates, value)
        dropped = [lbl for lbl, ok in zip(labels, keep) if not ok]

    return QueryResult(
        query=query,
        labels=list(labels),
        results=results,
        engine=engine,
        dropped_by_having=dropped,
    )


def _numeric_column(table: Table, preferred: str) -> str:
    """A numeric column usable as the engine's value column."""
    col = table.column(preferred) if preferred in table else None
    if col is not None and np.issubdtype(col.dtype, np.number):
        return preferred
    for name in table.column_names:
        if np.issubdtype(table.column(name).dtype, np.number):
            return name
    raise ValueError("table has no numeric column to anchor the engine")
