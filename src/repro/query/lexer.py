"""Tokenizer for the SQL subset."""

from __future__ import annotations

import re
from dataclasses import dataclass

__all__ = ["Token", "tokenize", "LexError"]

KEYWORDS = {
    "SELECT",
    "FROM",
    "WHERE",
    "GROUP",
    "BY",
    "HAVING",
    "AND",
    "OR",
    "NOT",
    "BETWEEN",
    "IN",
    "AVG",
    "SUM",
    "COUNT",
}

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<number>\d+\.\d*|\.\d+|\d+)
  | (?P<string>'(?:[^'\\]|\\.)*')
  | (?P<op><=|>=|!=|<>|=|<|>)
  | (?P<punct>[(),*])
  | (?P<ident>[A-Za-z_][A-Za-z_0-9]*)
    """,
    re.VERBOSE,
)


class LexError(ValueError):
    """Raised on unrecognized input."""


@dataclass(frozen=True)
class Token:
    kind: str  # keyword | ident | number | string | op | punct | eof
    value: str
    pos: int


def tokenize(text: str) -> list[Token]:
    """Tokenize ``text``; keywords are case-insensitive, idents keep case."""
    tokens: list[Token] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise LexError(f"unexpected character {text[pos]!r} at position {pos}")
        kind = match.lastgroup
        value = match.group()
        if kind != "ws":
            if kind == "ident" and value.upper() in KEYWORDS:
                tokens.append(Token("keyword", value.upper(), pos))
            elif kind == "string":
                inner = value[1:-1].replace("\\'", "'")
                tokens.append(Token("string", inner, pos))
            else:
                tokens.append(Token(kind, value, pos))
        pos = match.end()
    tokens.append(Token("eof", "", len(text)))
    return tokens
