"""Recursive-descent parser for the visualization-query SQL subset.

Grammar (keywords case-insensitive)::

    query      := SELECT select_item (',' select_item)* FROM ident
                  (WHERE pred)? GROUP BY ident (',' ident)*
                  (HAVING agg op number)?
    select_item:= ident | agg
    agg        := (AVG|SUM|COUNT) '(' (ident|'*') ')'
    pred       := and_expr (OR and_expr)*
    and_expr   := unary (AND unary)*
    unary      := NOT unary | '(' pred ')' | comparison
    comparison := ident op literal
                | ident BETWEEN literal AND literal
                | ident IN '(' literal (',' literal)* ')'
"""

from __future__ import annotations

from repro.query.ast import (
    Aggregate,
    And,
    Between,
    Comparison,
    InList,
    Not,
    Or,
    Predicate,
    Query,
)
from repro.query.lexer import Token, tokenize

__all__ = [
    "parse_query",
    "parse_predicate",
    "parse_aggregate",
    "parse_having",
    "ParseError",
]


class ParseError(ValueError):
    """Raised when the input does not conform to the grammar."""


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._i = 0

    # -- token helpers ------------------------------------------------------
    def peek(self) -> Token:
        return self._tokens[self._i]

    def advance(self) -> Token:
        tok = self._tokens[self._i]
        self._i += 1
        return tok

    def expect(self, kind: str, value: str | None = None) -> Token:
        tok = self.peek()
        if tok.kind != kind or (value is not None and tok.value != value):
            want = f"{kind} {value}" if value else kind
            raise ParseError(f"expected {want}, got {tok.kind} {tok.value!r} at {tok.pos}")
        return self.advance()

    def accept_keyword(self, word: str) -> bool:
        tok = self.peek()
        if tok.kind == "keyword" and tok.value == word:
            self.advance()
            return True
        return False

    # -- grammar ------------------------------------------------------------
    def parse_query(self) -> Query:
        self.expect("keyword", "SELECT")
        group_cols: list[str] = []
        aggregates: list[Aggregate] = []
        while True:
            tok = self.peek()
            if tok.kind == "keyword" and tok.value in ("AVG", "SUM", "COUNT"):
                aggregates.append(self._parse_aggregate())
            elif tok.kind == "ident":
                group_cols.append(self.advance().value)
            else:
                raise ParseError(f"expected column or aggregate at {tok.pos}")
            if self.peek().kind == "punct" and self.peek().value == ",":
                self.advance()
                continue
            break
        self.expect("keyword", "FROM")
        table = self.expect("ident").value

        where: Predicate | None = None
        if self.accept_keyword("WHERE"):
            where = self.parse_predicate()

        self.expect("keyword", "GROUP")
        self.expect("keyword", "BY")
        group_by = [self.expect("ident").value]
        while self.peek().kind == "punct" and self.peek().value == ",":
            self.advance()
            group_by.append(self.expect("ident").value)

        having = None
        if self.accept_keyword("HAVING"):
            agg = self._parse_aggregate()
            op = self.expect("op").value
            value = self._parse_number()
            having = (agg, op, value)

        self.expect("eof")
        return Query(
            table=table,
            group_by=tuple(group_by),
            aggregates=tuple(aggregates),
            where=where,
            having=having,
            select_groups=tuple(group_cols),
        )

    def _parse_aggregate(self) -> Aggregate:
        func = self.expect("keyword").value
        if func not in ("AVG", "SUM", "COUNT"):
            raise ParseError(f"{func} is not an aggregate")
        self.expect("punct", "(")
        tok = self.peek()
        if tok.kind == "punct" and tok.value == "*":
            self.advance()
            column = "*"
        else:
            column = self.expect("ident").value
        self.expect("punct", ")")
        return Aggregate(func, column)

    def _parse_number(self) -> float:
        tok = self.expect("number")
        return float(tok.value)

    def _parse_literal(self):
        tok = self.peek()
        if tok.kind == "number":
            self.advance()
            return float(tok.value) if "." in tok.value else int(tok.value)
        if tok.kind == "string":
            self.advance()
            return tok.value
        raise ParseError(f"expected literal at {tok.pos}, got {tok.kind}")

    def parse_predicate(self) -> Predicate:
        operands = [self._parse_and()]
        while self.accept_keyword("OR"):
            operands.append(self._parse_and())
        return operands[0] if len(operands) == 1 else Or(tuple(operands))

    def _parse_and(self) -> Predicate:
        operands = [self._parse_unary()]
        while self.accept_keyword("AND"):
            operands.append(self._parse_unary())
        return operands[0] if len(operands) == 1 else And(tuple(operands))

    def _parse_unary(self) -> Predicate:
        if self.accept_keyword("NOT"):
            return Not(self._parse_unary())
        tok = self.peek()
        if tok.kind == "punct" and tok.value == "(":
            self.advance()
            inner = self.parse_predicate()
            self.expect("punct", ")")
            return inner
        return self._parse_comparison()

    def _parse_comparison(self) -> Predicate:
        column = self.expect("ident").value
        tok = self.peek()
        if tok.kind == "keyword" and tok.value == "BETWEEN":
            self.advance()
            lo = self._parse_literal()
            self.expect("keyword", "AND")
            hi = self._parse_literal()
            return Between(column, lo, hi)
        if tok.kind == "keyword" and tok.value == "IN":
            self.advance()
            self.expect("punct", "(")
            values = [self._parse_literal()]
            while self.peek().kind == "punct" and self.peek().value == ",":
                self.advance()
                values.append(self._parse_literal())
            self.expect("punct", ")")
            return InList(column, tuple(values))
        op = self.expect("op").value
        value = self._parse_literal()
        return Comparison(column, op, value)


def parse_query(sql: str) -> Query:
    """Parse a visualization query; raises :class:`ParseError` on bad input."""
    return _Parser(tokenize(sql)).parse_query()


def parse_predicate(text: str) -> Predicate:
    """Parse a bare predicate expression (used in tests and tooling)."""
    parser = _Parser(tokenize(text))
    pred = parser.parse_predicate()
    parser.expect("eof")
    return pred


def parse_aggregate(text: str) -> Aggregate:
    """Parse a bare aggregate expression like ``"AVG(delay)"``.

    The fluent builder accepts aggregates in string form; routing them
    through the same grammar as full queries keeps both front doors lowering
    to identical :class:`~repro.query.ast.Aggregate` nodes.
    """
    parser = _Parser(tokenize(text))
    agg = parser._parse_aggregate()
    parser.expect("eof")
    return agg


def parse_having(text: str) -> tuple[Aggregate, str, float]:
    """Parse a bare HAVING clause body like ``"AVG(delay) > 20"``."""
    parser = _Parser(tokenize(text))
    agg = parser._parse_aggregate()
    op = parser.expect("op").value
    value = parser._parse_number()
    parser.expect("eof")
    return agg, op, value
