"""SQL-subset query layer: parse, plan, and execute visualization queries."""

from repro.query.ast import (
    Aggregate,
    And,
    Between,
    Comparison,
    InList,
    Not,
    Or,
    Predicate,
    Query,
)
from repro.query.parser import ParseError, parse_predicate, parse_query
from repro.query.plan import QueryResult, execute_query
from repro.query.predicates import (
    predicate_bitvector,
    predicate_columns,
    predicate_mask,
)

__all__ = [
    "Aggregate",
    "And",
    "Between",
    "Comparison",
    "InList",
    "Not",
    "Or",
    "Predicate",
    "Query",
    "ParseError",
    "parse_predicate",
    "parse_query",
    "QueryResult",
    "execute_query",
    "predicate_bitvector",
    "predicate_columns",
    "predicate_mask",
]
