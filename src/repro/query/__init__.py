"""SQL-subset query layer: parse, plan, and execute visualization queries."""

from repro.query.ast import (
    Aggregate,
    And,
    Between,
    Comparison,
    InList,
    Not,
    Or,
    Predicate,
    Query,
)
from repro.query.parser import ParseError, parse_predicate, parse_query
from repro.query.predicates import (
    predicate_bitvector,
    predicate_columns,
    predicate_mask,
)


def __getattr__(name: str):
    # QueryResult/execute_query live in repro.query.plan, which imports the
    # session planner (and through it the catalog).  Loading them lazily
    # keeps this package importable from the data layer (catalog modules use
    # the predicate AST) without a circular import.
    if name in ("QueryResult", "execute_query"):
        from repro.query import plan

        return getattr(plan, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "Aggregate",
    "And",
    "Between",
    "Comparison",
    "InList",
    "Not",
    "Or",
    "Predicate",
    "Query",
    "ParseError",
    "parse_predicate",
    "parse_query",
    "QueryResult",
    "execute_query",
    "predicate_bitvector",
    "predicate_columns",
    "predicate_mask",
]
