"""The SQL front door: every query shape the paper supports, in one script.

Demonstrates the Section 6.3 generalizations through the Session API's SQL
door: selection predicates, SUM and COUNT aggregates, HAVING, and multiple
group-by columns - all answered by sampling with the ordering guarantee and
all lowering to the same QuerySpec IR the fluent builder produces.

Run:  python examples/sql_interface.py
"""

import repro

QUERIES = [
    # The paper's canonical visualization query.
    "SELECT carrier, AVG(arrival_delay) FROM flights GROUP BY carrier",
    # Selection predicates (Section 6.3.3), evaluated as bitmaps.
    "SELECT carrier, AVG(departure_delay) FROM flights "
    "WHERE distance BETWEEN 300 AND 1500 AND year >= 2000 GROUP BY carrier",
    # SUM with known group sizes (Algorithm 4).
    "SELECT carrier, SUM(arrival_delay) FROM flights GROUP BY carrier",
    # COUNT is exact from bitmap-index metadata (Section 6.3.2).
    "SELECT carrier, COUNT(*) FROM flights GROUP BY carrier",
    # HAVING filters on the estimated aggregate (and surfaces a caveat).
    "SELECT carrier, AVG(arrival_delay) FROM flights GROUP BY carrier "
    "HAVING AVG(arrival_delay) > 8",
    # Multiple group-bys via the cross-product key (Section 6.3.4).
    "SELECT carrier, year, AVG(arrival_delay) FROM flights "
    "WHERE year IN (1995, 2005) GROUP BY carrier, year",
]


def main() -> None:
    session = repro.connect(delta=0.05)
    session.register_flights("flights", rows=150_000, seed=23)
    for sql in QUERIES:
        print("=" * 72)
        print(sql.strip())
        out = session.sql(sql).run(seed=13)
        for key, agg in out.aggregates.items():
            pairs = sorted(agg.estimates().items(), key=lambda p: -p[1])[:6]
            shown = ", ".join(f"{label}={value:.2f}" for label, value in pairs)
            print(f"  {key}: {shown}" + (" ..." if len(out.labels) > 6 else ""))
            print(f"    samples={agg.total_samples:,} algorithm={agg.algorithm}")
        if out.dropped_by_having:
            print(f"  HAVING dropped: {out.dropped_by_having}")
        for caveat in out.caveats:
            print(f"  caveat: {caveat.splitlines()[0]}")
    print("=" * 72)


if __name__ == "__main__":
    main()
