"""Data sources: the pluggable catalog behind the Session front door.

Walks the `repro.catalog` surface: a chunked CSV source with predicate
pushdown, a streaming iterator source, a synthetic generator spec, and the
catalog's cached lazy builds.

Run:  python examples/data_sources.py
"""

import csv
import os
import tempfile

import numpy as np

import repro


def write_demo_csv(path: str, rows: int = 50_000) -> None:
    """A city/delay/year CSV large enough that chunking matters."""
    rng = np.random.default_rng(11)
    cities = ["NYC", "LA", "SF", "CHI", "HOU"]
    base = {"NYC": 22.0, "LA": 31.0, "SF": 48.0, "CHI": 36.0, "HOU": 27.0}
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["city", "delay", "year"])
        for _ in range(rows):
            city = cities[int(rng.integers(len(cities)))]
            delay = max(0.0, rng.normal(base[city], 9.0))
            writer.writerow([city, f"{delay:.3f}", int(rng.integers(2015, 2025))])


def main() -> None:
    session = repro.connect(delta=0.05, engine="memory")

    # -- chunked CSV with predicate pushdown --------------------------------
    path = os.path.join(tempfile.mkdtemp(), "trips.csv")
    write_demo_csv(path)
    session.register_csv("trips", path, group_columns=["city"], chunk_rows=8_192)

    info = session.describe_table("trips")
    print(f"registered {info.description}: {info.row_count_hint:,} rows")
    print("columns:", ", ".join(f"{c.name}:{c.kind}" for c in info.schema))

    # WHERE is lowered into the chunked scan: rows failing year >= 2020 are
    # dropped chunk-by-chunk, before the population is built.
    builder = (
        session.table("trips")
        .where("year >= 2020")
        .group_by("city")
        .agg(repro.avg("delay"))
    )
    print("\nplan:")
    print(builder.explain())
    result = builder.run(seed=1)
    print("\nrecent-year delays (certified order):")
    for label in result.first.order():
        print(f"  {label:>4}  {result.estimates()[label]:7.2f}")

    # The build is cached: the same (table, group, value, predicate) key
    # reuses the population, so this run does not rescan the file.
    builder.run(seed=2)
    print("\ncached population builds:",
          len(session.describe_table("trips").cached_populations))

    # -- streaming ingest through an iterator source ------------------------
    def chunk_factory():
        rng = np.random.default_rng(3)
        for _ in range(20):  # e.g. micro-batches arriving from a socket
            g = rng.choice(["sensor-a", "sensor-b", "sensor-c"], size=2_000)
            base = {"sensor-a": 10.0, "sensor-b": 30.0, "sensor-c": 55.0}
            v = np.array([base[x] for x in g]) + rng.normal(0, 4, size=2_000)
            yield {"sensor": g, "value": np.clip(v, 0, 100)}

    session.register_source("feed", repro.IteratorSource(chunk_factory))
    feed = (
        session.table("feed").group_by("sensor").agg(repro.avg("value")).run(seed=5)
    )
    print("\nsensor averages:", {k: round(v, 2) for k, v in feed.estimates().items()})

    # -- a synthetic generator spec as a relation ---------------------------
    # Virtual populations (distribution-backed, here 10M nominal rows) flow
    # straight into the population engine - no rows are ever materialized.
    session.register_synthetic(
        "bench", "mixture", k=8, total_size=10_000_000, seed=42
    )
    bench = (
        session.table("bench").group_by("g").agg(repro.avg("value")).run(seed=6)
    )
    frac = bench.total_samples / 10_000_000
    print(
        f"\nsynthetic 10M-row mixture: ordered {len(bench.labels)} groups "
        f"after sampling {bench.total_samples:,} rows ({frac:.3%})"
    )


if __name__ == "__main__":
    main()
