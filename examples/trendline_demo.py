"""Trend lines: neighbor-only ordering over an ordinal (monthly) axis.

Problem 3 of the paper: on a trend line only *adjacent* comparisons shape
the visual, so the ``.trends()`` guarantee needs far fewer samples than full
ordering.  This demo plots monthly average delays with a guaranteed
up/down/flat direction for every month-over-month step.

Run:  python examples/trendline_demo.py
"""

import numpy as np

import repro
from repro.viz import render_trendline, step_directions

# "01-Jan".."12-Dec": zero-padded keys keep the engine's sorted group order
# chronological, which is what the trends adjacency chain runs along.
MONTHS = ["Jan", "Feb", "Mar", "Apr", "May", "Jun",
          "Jul", "Aug", "Sep", "Oct", "Nov", "Dec"]
KEYS = [f"{i + 1:02d}-{m}" for i, m in enumerate(MONTHS)]
# Seasonal delay pattern: winter storms, summer thunderstorms.
MONTH_MEANS = [48, 44, 36, 30, 28, 38, 46, 45, 26, 24, 33, 52]


def main() -> None:
    rng = np.random.default_rng(17)
    rows = 120_000
    session = repro.connect(delta=0.05, engine="memory")
    session.register(
        "monthly",
        {
            "month": np.repeat(KEYS, rows),
            "delay": np.concatenate(
                [np.clip(rng.normal(mu, 14.0, rows), 0, 100) for mu in MONTH_MEANS]
            ),
        },
    )
    base = session.table("monthly").group_by("month").agg(repro.avg("delay")).bound(100.0)

    trends = base.trends().run(seed=2)
    estimates = trends.first.raw.estimates
    print(render_trendline(MONTHS, estimates, title="monthly average delay"))
    print()

    est_dirs = step_directions(estimates)
    true_dirs = step_directions(np.array(MONTH_MEANS, dtype=float))
    print(f"estimated steps: {est_dirs}")
    print(f"true steps     : {true_dirs}")
    print(f"all adjacent steps correct: {est_dirs == true_dirs}")

    full = base.run(seed=2)
    print(f"\nsamples (trends, adjacent-only): {trends.total_samples:,}")
    print(f"samples (full ordering)        : {full.total_samples:,}")


if __name__ == "__main__":
    main()
