"""Trend lines: neighbor-only ordering over an ordinal (monthly) axis.

Problem 3 of the paper: on a trend line only *adjacent* comparisons shape
the visual, so the trends variant needs far fewer samples than full
ordering.  This demo plots monthly average delays with a guaranteed
up/down/flat direction for every month-over-month step.

Run:  python examples/trendline_demo.py
"""

import numpy as np

from repro.core.reference import run_ifocus_reference
from repro.data.population import MaterializedGroup, Population
from repro.engines.memory import InMemoryEngine
from repro.extensions import run_ifocus_trends
from repro.viz import render_trendline, step_directions

MONTHS = ["Jan", "Feb", "Mar", "Apr", "May", "Jun",
          "Jul", "Aug", "Sep", "Oct", "Nov", "Dec"]
# Seasonal delay pattern: winter storms, summer thunderstorms.
MONTH_MEANS = [48, 44, 36, 30, 28, 38, 46, 45, 26, 24, 33, 52]


def main() -> None:
    rng = np.random.default_rng(17)
    population = Population(
        groups=[
            MaterializedGroup(m, np.clip(rng.normal(mu, 14.0, 120_000), 0, 100))
            for m, mu in zip(MONTHS, MONTH_MEANS)
        ],
        c=100.0,
    )
    engine = InMemoryEngine(population)

    trends = run_ifocus_trends(engine, delta=0.05, seed=2)
    print(render_trendline(MONTHS, trends.estimates, title="monthly average delay"))
    print()

    est_dirs = step_directions(trends.estimates)
    true_dirs = step_directions(np.array(MONTH_MEANS, dtype=float))
    print(f"estimated steps: {est_dirs}")
    print(f"true steps     : {true_dirs}")
    print(f"all adjacent steps correct: {est_dirs == true_dirs}")

    full = run_ifocus_reference(engine, delta=0.05, seed=2)
    print(f"\nsamples (trends, adjacent-only): {trends.total_samples:,}")
    print(f"samples (full ordering)        : {full.total_samples:,}")


if __name__ == "__main__":
    main()
