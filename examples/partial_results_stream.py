"""Partial results: watch the bar chart fill in as groups are finalized.

Problem 7 of the paper: IFOCUS resolves easy groups long before contentious
ones, so an interactive tool can show bars the moment they are trustworthy.
This demo uses the Session API's ``.stream()`` - the first-class incremental
mode every workload supports - and re-renders the chart after each update;
groups still being sampled are shown as pending.

Run:  python examples/partial_results_stream.py
"""

import numpy as np

import repro
from repro.viz import BarChart

# Two contentious pairs (31 vs 32.5 and 58 vs 59) among easy groups.
MEANS = {"east": 31.0, "west": 32.5, "north": 58.0, "south": 59.0, "hub": 12.0, "intl": 86.0}
ROWS_PER_REGION = 200_000


def main() -> None:
    rng = np.random.default_rng(3)
    session = repro.connect(delta=0.05, engine="memory")
    session.register(
        "delays",
        {
            "region": np.repeat(list(MEANS), ROWS_PER_REGION),
            "delay": np.concatenate(
                [
                    np.clip(rng.normal(mu, 12.0, ROWS_PER_REGION), 0, 100)
                    for mu in MEANS.values()
                ]
            ),
        },
    )

    finalized: dict[str, tuple[float, float]] = {}
    stream = (
        session.table("delays")
        .group_by("region")
        .agg(repro.avg("delay"))
        .bound(100.0)
        .stream(seed=9)
    )
    for update in stream:
        g = update.group
        finalized[g.label] = (g.estimate, g.half_width)
        print(
            f"\n== {update.emitted_so_far}/{update.total_groups} finalized: "
            f"{g.label} = {g.estimate:.2f} "
            f"(+/- {g.half_width:.2f}, {g.samples:,} samples, "
            f"round {g.finalized_round:,})"
        )
        labels, values, widths = [], [], []
        for name in sorted(MEANS):
            if name in finalized:
                labels.append(name)
                values.append(finalized[name][0])
                widths.append(finalized[name][1])
            else:
                labels.append(f"{name} (sampling...)")
                values.append(0.0)
                widths.append(0.0)
        chart = BarChart(
            labels=labels,
            values=np.array(values),
            half_widths=np.array(widths),
            value_max=100.0,
            title="partial ordering-guaranteed results",
        )
        print(chart.render())
    print(
        "\nAll emitted groups were correctly ordered among themselves at every "
        "step with probability >= 0.95 (Problem 7 guarantee)."
    )
    print(f"final result: {stream.result.summary()}")


if __name__ == "__main__":
    main()
