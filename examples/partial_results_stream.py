"""Partial results: watch the bar chart fill in as groups are finalized.

Problem 7 of the paper: IFOCUS resolves easy groups long before contentious
ones, so an interactive tool can show bars the moment they are trustworthy.
This demo streams finalizations and re-renders the chart after each one;
groups still being sampled are shown as pending.

Run:  python examples/partial_results_stream.py
"""

import numpy as np

from repro.data.population import MaterializedGroup, Population
from repro.engines.memory import InMemoryEngine
from repro.extensions import stream_partial_results
from repro.viz import BarChart

# Two contentious pairs (31 vs 32.5 and 58 vs 59) among easy groups.
MEANS = {"east": 31.0, "west": 32.5, "north": 58.0, "south": 59.0, "hub": 12.0, "intl": 86.0}


def main() -> None:
    rng = np.random.default_rng(3)
    population = Population(
        groups=[
            MaterializedGroup(name, np.clip(rng.normal(mu, 12.0, 200_000), 0, 100))
            for name, mu in MEANS.items()
        ],
        c=100.0,
    )
    engine = InMemoryEngine(population)

    finalized: dict[str, tuple[float, float]] = {}
    for update in stream_partial_results(engine, delta=0.05, seed=9):
        outcome = update.outcome
        finalized[outcome.name] = (outcome.estimate, outcome.half_width)
        print(
            f"\n== {update.emitted_so_far}/{update.total_groups} finalized: "
            f"{outcome.name} = {outcome.estimate:.2f} "
            f"(+/- {outcome.half_width:.2f}, {outcome.samples:,} samples, "
            f"round {outcome.finalized_round:,})"
        )
        labels, values, widths = [], [], []
        for name in MEANS:
            if name in finalized:
                labels.append(name)
                values.append(finalized[name][0])
                widths.append(finalized[name][1])
            else:
                labels.append(f"{name} (sampling...)")
                values.append(0.0)
                widths.append(0.0)
        chart = BarChart(
            labels=labels,
            values=np.array(values),
            half_widths=np.array(widths),
            value_max=100.0,
            title="partial ordering-guaranteed results",
        )
        print(chart.render())
    print(
        "\nAll emitted groups were correctly ordered among themselves at every "
        "step with probability >= 0.95 (Problem 7 guarantee)."
    )


if __name__ == "__main__":
    main()
