"""Flight-delay analytics: SQL queries over the NEEDLETAIL engine.

The workload the paper's Section 5.3 evaluates, end to end: a flights table,
a bitmap index on the carrier column, a WHERE predicate evaluated as a
bitmap, and the three algorithms compared on the same visualization query -
including a mini Table 3 with simulated runtimes.

Run:  python examples/flight_delays.py
"""

import numpy as np

import repro
from repro.data.flights import make_flights_table
from repro.viz import BarChart

QUERY = """
    SELECT carrier, AVG(arrival_delay)
    FROM flights
    WHERE distance > 500
    GROUP BY carrier
"""


def main() -> None:
    table = make_flights_table(num_rows=300_000, seed=11)
    print(f"flights table: {table.num_rows:,} rows, columns {table.column_names}")

    session = repro.connect(delta=0.05)
    session.register("flights", table)

    # --- the approximate visualization query ------------------------------
    out = session.sql(QUERY).run(seed=1)
    estimates = out.estimates()
    chart = BarChart(
        labels=list(estimates),
        values=np.array(list(estimates.values())),
        title=f"AVG(arrival_delay) WHERE distance > 500 "
        f"({out.total_samples:,} samples)",
    )
    print(chart.render(sort=True))
    print()

    # --- mini Table 3: algorithm comparison on the same engine -------------
    base = session.sql(QUERY)
    print("algorithm comparison (same query, same guarantee):")
    print(f"{'algorithm':>12}  {'samples':>10}  {'sim seconds':>11}  top carrier")
    for alg in ("roundrobin", "ifocus", "ifocusr"):
        builder = base.using(alg)
        if alg == "ifocusr":
            builder = builder.guarantee(resolution=0.01 * 120.0)
        res = builder.run(seed=5)
        agg = res.first
        best = agg.order(descending=True)[0]
        print(
            f"{alg:>12}  {agg.total_samples:>10,}  "
            f"{res.total_seconds:>11.4f}  {best}"
        )
    print("\n(ifocusr uses the 1% visual-resolution relaxation of Problem 2)")


if __name__ == "__main__":
    main()
