"""Flight-delay analytics: SQL queries over the NEEDLETAIL engine.

The workload the paper's Section 5.3 evaluates, end to end: a flights table,
a bitmap index on the carrier column, a WHERE predicate evaluated as a
bitmap, and the three algorithms compared on the same visualization query -
including a mini Table 3 with simulated runtimes.

Run:  python examples/flight_delays.py
"""

import numpy as np

from repro.core.registry import run_algorithm
from repro.data.flights import make_flights_table
from repro.needletail.engine import NeedletailEngine
from repro.query import execute_query
from repro.viz import BarChart

QUERY = """
    SELECT carrier, AVG(arrival_delay)
    FROM flights
    WHERE distance > 500
    GROUP BY carrier
"""


def main() -> None:
    table = make_flights_table(num_rows=300_000, seed=11)
    print(f"flights table: {table.num_rows:,} rows, columns {table.column_names}")

    # --- the approximate visualization query ------------------------------
    out = execute_query(QUERY, {"flights": table}, algorithm="ifocus", delta=0.05, seed=1)
    estimates = out.estimates()
    chart = BarChart(
        labels=list(estimates),
        values=np.array(list(estimates.values())),
        title=f"AVG(arrival_delay) WHERE distance > 500 "
        f"({out.total_samples:,} samples)",
    )
    print(chart.render(sort=True))
    print()

    # --- mini Table 3: algorithm comparison on the same engine -------------
    print("algorithm comparison (same query, same guarantee):")
    print(f"{'algorithm':>12}  {'samples':>10}  {'sim seconds':>11}  top carrier")
    for alg, res in (
        ("roundrobin", None),
        ("ifocus", None),
        ("ifocusr", None),
    ):
        engine = NeedletailEngine(table, "carrier", "arrival_delay")
        res = run_algorithm(
            alg,
            engine,
            delta=0.05,
            resolution=0.01 * engine.c if alg == "ifocusr" else 0.0,
            seed=5,
        )
        best = res.groups[int(np.argmax(res.estimates))].name
        print(
            f"{alg:>12}  {res.total_samples:>10,}  "
            f"{res.stats.total_seconds:>11.4f}  {best}"
        )
    print("\n(ifocusr uses the 1% visual-resolution relaxation of Problem 2)")


if __name__ == "__main__":
    main()
