"""Quickstart: an ordering-guaranteed bar chart through the Session API.

Builds the paper's motivating example - average flight delay per airline
(Figure 1) - and renders an approximate bar chart whose bar ORDER is correct
with probability >= 95%, after sampling only a small fraction of the data.

Run:  python examples/quickstart.py
"""

import numpy as np

import repro
from repro.viz import render_barchart

# The Figure 1 airlines and their true average delays (minutes).
AIRLINES = {"AA": 30, "JB": 15, "UA": 85, "DL": 45, "US": 60, "AL": 20, "SW": 23}
ROWS_PER_AIRLINE = 500_000


def main() -> None:
    rng = np.random.default_rng(7)
    session = repro.connect(delta=0.05, engine="memory")
    session.register(
        "delays",
        {
            "airline": np.repeat(list(AIRLINES), ROWS_PER_AIRLINE),
            "delay": np.concatenate(
                [
                    np.clip(rng.normal(mean, 15.0, ROWS_PER_AIRLINE), 0, 100)
                    for mean in AIRLINES.values()
                ]
            ),
        },
    )

    result = (
        session.table("delays")
        .group_by("airline")
        .agg(repro.avg("delay"))
        .bound(100.0)
        .run(seed=42)
    )
    print(render_barchart(result.first.raw, title="Average delay by airline (IFOCUS)"))
    print()

    total = result.engine.population.total_size
    print(f"dataset rows      : {total:,}")
    print(f"samples taken     : {result.total_samples:,} "
          f"({100 * result.total_samples / total:.3f}% of the data)")
    print(f"estimated order   : {result.first.order()}")
    print(f"guarantee         : {result.guarantee.describe()}")

    # The SQL front door lowers to the same QuerySpec and the same answer:
    same = session.sql(
        "SELECT airline, AVG(delay) FROM delays GROUP BY airline"
    ).bound(100.0).run(seed=42)
    print(f"SQL door agrees   : {same.estimates() == result.estimates()}")


if __name__ == "__main__":
    main()
