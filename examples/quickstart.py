"""Quickstart: an ordering-guaranteed bar chart in ~20 lines.

Builds the paper's motivating example - average flight delay per airline
(Figure 1) - and renders an approximate bar chart whose bar ORDER is correct
with probability >= 95%, after sampling only a small fraction of the data.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import InMemoryEngine, run_ifocus, run_scan
from repro.viz import render_barchart

# The Figure 1 airlines and their true average delays (minutes).
AIRLINES = {"AA": 30, "JB": 15, "UA": 85, "DL": 45, "US": 60, "AL": 20, "SW": 23}
ROWS_PER_AIRLINE = 500_000


def main() -> None:
    rng = np.random.default_rng(7)
    engine = InMemoryEngine.from_arrays(
        names=list(AIRLINES),
        arrays=[
            np.clip(rng.normal(mean, 15.0, ROWS_PER_AIRLINE), 0, 100)
            for mean in AIRLINES.values()
        ],
        c=100.0,
    )

    result = run_ifocus(engine, delta=0.05, seed=42)
    print(render_barchart(result, title="Average delay by airline (IFOCUS)"))
    print()

    exact = run_scan(engine)
    total = engine.population.total_size
    print(f"dataset rows      : {total:,}")
    print(f"samples taken     : {result.total_samples:,} "
          f"({100 * result.total_samples / total:.3f}% of the data)")
    print(f"estimated order   : {[result.groups[i].name for i in result.order()]}")
    print(f"true order        : {[exact.groups[i].name for i in exact.order()]}")
    ok = list(result.order()) == list(exact.order())
    print(f"ordering correct  : {ok} (guaranteed w.p. >= 0.95)")


if __name__ == "__main__":
    main()
