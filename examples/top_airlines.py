"""Top-t queries: find the worst offenders without resolving everyone.

Problem 4 of the paper: with many groups, the analyst only looks at the top
few.  This demo builds 30 "routes", asks for the 5 highest-delay ones via
the Session API's ``.top(5)``, and compares the sampling cost against a full
run that orders all 30.

Run:  python examples/top_airlines.py
"""

import numpy as np

import repro


def main() -> None:
    rng = np.random.default_rng(21)
    k = 30
    rows = 60_000
    means = rng.uniform(10, 90, k)
    labels = [f"route{i:02d}" for i in range(k)]
    session = repro.connect(delta=0.05, engine="memory")
    session.register(
        "routes",
        {
            "route": np.repeat(labels, rows),
            "delay": np.concatenate(
                [np.clip(rng.normal(mu, 10.0, rows), 0, 100) for mu in means]
            ),
        },
    )
    base = session.table("routes").group_by("route").agg(repro.avg("delay")).bound(100.0)

    top = base.top(5).run(seed=4)
    print("top-5 routes by average delay (ordering-guaranteed):")
    top_labels = top.first.meta["top_labels"]
    for rank, name in enumerate(top_labels, 1):
        print(f"  {rank}. {name}: {top.first[name].estimate:.2f}")

    true_top = np.argsort(means)[::-1][:5]
    print(f"\ntrue top-5     : {[labels[i] for i in true_top]}")
    print(f"reported top-5 : {top_labels}")

    full = base.run(seed=4)
    saved = 100 * (1 - top.total_samples / full.total_samples)
    print(f"\nsamples (top-5 only) : {top.total_samples:,}")
    print(f"samples (full order) : {full.total_samples:,}")
    print(f"saved by top-t       : {saved:.1f}%")


if __name__ == "__main__":
    main()
