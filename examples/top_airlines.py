"""Top-t queries: find the worst offenders without resolving everyone.

Problem 4 of the paper: with many groups, the analyst only looks at the top
few.  This demo builds 30 "routes", asks for the 5 highest-delay ones, and
compares the sampling cost against a full IFOCUS run that orders all 30.

Run:  python examples/top_airlines.py
"""

import numpy as np

from repro.core.reference import run_ifocus_reference
from repro.data.population import MaterializedGroup, Population
from repro.engines.memory import InMemoryEngine
from repro.extensions import run_ifocus_topt


def main() -> None:
    rng = np.random.default_rng(21)
    k = 30
    means = rng.uniform(10, 90, k)
    population = Population(
        groups=[
            MaterializedGroup(
                f"route{i:02d}", np.clip(rng.normal(means[i], 10.0, 60_000), 0, 100)
            )
            for i in range(k)
        ],
        c=100.0,
    )
    engine = InMemoryEngine(population)

    top = run_ifocus_topt(engine, t=5, delta=0.05, largest=True, seed=4)
    print("top-5 routes by average delay (ordering-guaranteed):")
    for rank, (name, est) in enumerate(zip(top.top_names, top.top_estimates), 1):
        print(f"  {rank}. {name}: {est:.2f}")

    true_top = np.argsort(means)[::-1][:5]
    print(f"\ntrue top-5     : {[f'route{i:02d}' for i in true_top]}")
    print(f"reported top-5 : {top.top_names}")

    full = run_ifocus_reference(engine, delta=0.05, seed=4)
    saved = 100 * (1 - top.result.total_samples / full.total_samples)
    print(f"\nsamples (top-5 only) : {top.result.total_samples:,}")
    print(f"samples (full order) : {full.total_samples:,}")
    print(f"saved by top-t       : {saved:.1f}%")


if __name__ == "__main__":
    main()
