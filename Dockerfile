# Container image for the always-on query service (`repro serve`).
#
#   docker build -t repro-serve .
#   docker run --rm -p 8765:8765 repro-serve
#   curl -s localhost:8765/healthz
#
# Mount your own data and register it at startup:
#
#   docker run --rm -p 8765:8765 -v $PWD/data:/data repro-serve \
#       --csv delays=/data/delays.csv --tenant dashboards=8:32:2000
#
# The image is intentionally tiny: the package is stdlib + numpy, so one
# slim Python base layer plus the source tree is the whole story.

FROM python:3.12-slim

# The only hard runtime dependency; pyarrow (Parquet sources) is optional
# and deliberately not baked in.
RUN pip install --no-cache-dir "numpy>=1.24"

WORKDIR /app
COPY pyproject.toml README.md ./
COPY src ./src
RUN pip install --no-cache-dir --no-deps .

# /proc-backed shared memory for --executor process shard fan-out.
# Size it with `docker run --shm-size=1g` for large populations.

EXPOSE 8765
# Bind all interfaces inside the container; publish selectively with -p.
ENTRYPOINT ["python", "-m", "repro", "serve", "--host", "0.0.0.0", "--port", "8765"]
# Default workload: the synthetic flights table. Override CMD (or append
# flags) to serve your own catalog.
CMD ["--flights"]
